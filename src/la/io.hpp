#pragma once

#include <string>

#include "la/csc_matrix.hpp"
#include "la/matrix.hpp"

namespace extdict::la {

/// Matrix Market I/O — the interchange format hyperspectral / morphology
/// datasets are commonly shipped in, so the library can run on real data
/// as well as the synthetic generators.
///
/// Supported flavours:
///   * "%%MatrixMarket matrix array real general"      <-> dense Matrix
///   * "%%MatrixMarket matrix coordinate real general" <-> CscMatrix

/// Writes a dense matrix in array format (column major, as the format
/// prescribes).
void write_matrix_market(const Matrix& a, const std::string& path);

/// Writes a sparse matrix in coordinate format (1-based indices).
void write_matrix_market(const CscMatrix& a, const std::string& path);

/// Reads an array-format file into a dense matrix. Throws std::runtime_error
/// on malformed input.
[[nodiscard]] Matrix read_matrix_market_dense(const std::string& path);

/// Reads a coordinate-format file into a CSC matrix (duplicate entries are
/// summed, as is conventional).
[[nodiscard]] CscMatrix read_matrix_market_sparse(const std::string& path);

/// Raw binary round-trip (fast checkpointing of transforms): a small header
/// then the column-major payload.
void write_binary(const Matrix& a, const std::string& path);
[[nodiscard]] Matrix read_binary(const std::string& path);

}  // namespace extdict::la
