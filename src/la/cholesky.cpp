#include "la/cholesky.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/contracts.hpp"

namespace extdict::la {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  EXTDICT_REQUIRE_SHAPE(a.rows() == a.cols(),
                        "Cholesky: matrix must be square, got " +
                            std::to_string(a.rows()) + "x" +
                            std::to_string(a.cols()));
  EXTDICT_CHECK_FINITE(std::span<const Real>(a.data(),
                                             static_cast<std::size_t>(a.size())),
                       "Cholesky: input matrix");
  const Index n = a.rows();
  for (Index j = 0; j < n; ++j) {
    Real d = a(j, j);
    for (Index k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= Real{0}) {
      throw std::domain_error("Cholesky: matrix is not positive definite");
    }
    l_(j, j) = std::sqrt(d);
    for (Index i = j + 1; i < n; ++i) {
      Real s = a(i, j);
      for (Index k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

void Cholesky::solve_in_place(std::span<Real> b) const {
  const Index n = l_.rows();
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(b.size()) == n,
                        "Cholesky::solve: |b|=" + std::to_string(b.size()) +
                            " but L is " + std::to_string(n) + "x" +
                            std::to_string(n));
  // L w = b
  for (Index i = 0; i < n; ++i) {
    Real s = b[static_cast<std::size_t>(i)];
    for (Index k = 0; k < i; ++k) s -= l_(i, k) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = s / l_(i, i);
  }
  // L^T x = w
  for (Index i = n - 1; i >= 0; --i) {
    Real s = b[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n; ++k) s -= l_(k, i) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = s / l_(i, i);
  }
}

// extdict-lint: allow(missing-shape-contract) shape-checked by solve_in_place
Vector Cholesky::solve(std::span<const Real> b) const {
  Vector x(b.begin(), b.end());
  solve_in_place(x);
  return x;
}

ProgressiveCholesky::ProgressiveCholesky(Index capacity)
    : capacity_(capacity),
      l_(static_cast<std::size_t>(capacity * (capacity + 1) / 2), Real{0}) {
  EXTDICT_REQUIRE_SHAPE(capacity > 0,
                        "ProgressiveCholesky: capacity must be > 0, got " +
                            std::to_string(capacity));
}

bool ProgressiveCholesky::append(std::span<const Real> g_new, Real g_diag) {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(g_new.size()) == n_,
                        "ProgressiveCholesky::append: |g_new|=" +
                            std::to_string(g_new.size()) + " but factor has " +
                            std::to_string(n_) + " columns");
  EXTDICT_CHECK_FINITE(g_new, "ProgressiveCholesky::append: Gram column");
  EXTDICT_ASSERT(std::isfinite(g_diag),
                 "ProgressiveCholesky::append: non-finite diagonal entry");
  if (n_ >= capacity_) {
    throw std::logic_error("ProgressiveCholesky::append: capacity exceeded");
  }
  // Solve L w = g_new; the new row of L is [w^T, sqrt(g_diag - ||w||^2)].
  const Index i = n_;
  Real ssq = 0;
  for (Index j = 0; j < i; ++j) {
    Real s = g_new[static_cast<std::size_t>(j)];
    for (Index k = 0; k < j; ++k) s -= at(j, k) * at(i, k);
    const Real w = s / at(j, j);
    at(i, j) = w;
    ssq += w * w;
  }
  const Real d = g_diag - ssq;
  constexpr Real kMinPivot = 1e-12;
  if (d <= kMinPivot) return false;
  at(i, i) = std::sqrt(d);
  ++n_;
  return true;
}

// extdict-lint: allow(missing-shape-contract) internal helper, caller-validated
void ProgressiveCholesky::solve_lower(std::span<Real> b) const {
  for (Index i = 0; i < n_; ++i) {
    Real s = b[static_cast<std::size_t>(i)];
    for (Index k = 0; k < i; ++k) s -= at(i, k) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = s / at(i, i);
  }
}

// extdict-lint: allow(missing-shape-contract) internal helper, caller-validated
void ProgressiveCholesky::solve_lower_t(std::span<Real> b) const {
  for (Index i = n_ - 1; i >= 0; --i) {
    Real s = b[static_cast<std::size_t>(i)];
    for (Index k = i + 1; k < n_; ++k) s -= at(k, i) * b[static_cast<std::size_t>(k)];
    b[static_cast<std::size_t>(i)] = s / at(i, i);
  }
}

void ProgressiveCholesky::solve_in_place(std::span<Real> b) const {
  EXTDICT_REQUIRE_SHAPE(static_cast<Index>(b.size()) == n_,
                        "ProgressiveCholesky::solve: |b|=" +
                            std::to_string(b.size()) + " but factor is " +
                            std::to_string(n_) + "x" + std::to_string(n_));
  solve_lower(b);
  solve_lower_t(b);
}

}  // namespace extdict::la
