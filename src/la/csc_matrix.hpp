#pragma once

#include <span>
#include <vector>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::la {

/// Compressed-sparse-column matrix.
///
/// The ExD coefficient matrix `C (L x N)` is stored in this format: each
/// column holds the few OMP-selected atoms of one data signal. CSC makes the
/// two products Algorithm 2 needs cheap:
///   * `v = C * x`   — scatter per column (`spmv`),
///   * `y = C^T * w` — gather per column (`spmv_t`, embarrassingly parallel).
class CscMatrix {
 public:
  CscMatrix() : col_ptr_(1, 0) {}

  /// Empty matrix with a fixed shape (all-zero).
  CscMatrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), col_ptr_(static_cast<std::size_t>(cols) + 1, 0) {}

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint64_t nnz() const noexcept { return values_.size(); }

  /// Average number of non-zeros per column — the paper's density measure
  /// alpha(L) (Eq. 5). Zero for an empty matrix.
  [[nodiscard]] Real density_per_column() const noexcept {
    return cols_ == 0 ? Real{0} : static_cast<Real>(nnz()) / static_cast<Real>(cols_);
  }

  [[nodiscard]] std::span<const Index> col_rows(Index j) const noexcept {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
    const auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1]);
    return {row_idx_.data() + b, e - b};
  }
  [[nodiscard]] std::span<const Real> col_values(Index j) const noexcept {
    const auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
    const auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1]);
    return {values_.data() + b, e - b};
  }

  /// v += alpha * C(:, j0..j1) * x where x indexes the *local* column range.
  /// The full product is `spmv` with the whole range.
  void spmv_range(Index j0, Index j1, std::span<const Real> x,
                  std::span<Real> v) const;

  /// v = C * x  (v sized rows(), x sized cols()).
  void spmv(std::span<const Real> x, std::span<Real> v) const;

  /// y = C^T * w (y sized cols(), w sized rows()). Parallel over columns.
  void spmv_t(std::span<const Real> w, std::span<Real> y) const;

  /// y(j - j0) = C(:, j)^T w for j in [j0, j1) — the local slice of C^T w.
  void spmv_t_range(Index j0, Index j1, std::span<const Real> w,
                    std::span<Real> y) const;

  /// Extracts columns [j0, j1) as a new CSC matrix with the same row space.
  [[nodiscard]] CscMatrix slice_columns(Index j0, Index j1) const;

  /// Converts to a dense matrix (tests / small problems only).
  [[nodiscard]] Matrix to_dense() const;

  /// Number of non-zeros in column `j`.
  [[nodiscard]] Index col_nnz(Index j) const noexcept {
    return col_ptr_[static_cast<std::size_t>(j) + 1] - col_ptr_[static_cast<std::size_t>(j)];
  }

  /// Words of memory: one Real-sized word per value plus half a word per
  /// index (row indices and column pointers are stored as 32-bit integers
  /// in any practical CSC implementation; a word here is a 64-bit Real).
  [[nodiscard]] std::uint64_t memory_words() const noexcept {
    const std::uint64_t values = values_.size();
    const std::uint64_t indices = values_.size() + col_ptr_.size();
    return values + (indices + 1) / 2;
  }

  /// Horizontally concatenates `right` (row counts must match). Supports the
  /// evolving-data zero-padding update.
  void append_columns(const CscMatrix& right);

  /// Grows the row dimension to `new_rows >= rows()`; existing entries keep
  /// their indices (i.e. zero-pads at the bottom). Needed when the dictionary
  /// is extended with new atoms.
  void pad_rows(Index new_rows);

  /// Column-by-column builder. Columns must be appended in order; rows
  /// within a column may arrive unsorted and are sorted on commit.
  class Builder {
   public:
    Builder(Index rows, Index cols);

    /// Appends one entry to the column currently being built.
    void add(Index row, Real value);

    /// Finishes the current column and moves to the next.
    void commit_column();

    /// Finalises; all remaining columns are committed empty.
    [[nodiscard]] CscMatrix build() &&;

   private:
    Index rows_;
    Index cols_;
    std::vector<Index> col_ptr_;
    std::vector<Index> row_idx_;
    std::vector<Real> values_;
    std::vector<std::pair<Index, Real>> pending_;
    Index committed_ = 0;
  };

  /// Assembles from per-column (row, value) lists — used by the parallel
  /// sparse coder, where column supports are produced out of order.
  static CscMatrix from_columns(Index rows,
                                const std::vector<std::vector<std::pair<Index, Real>>>& cols);

  /// Adopts pre-built CSC arrays (fast deserialisation / sharding path).
  /// Array-length consistency is always enforced; the full structural
  /// invariants (monotone column pointers, in-range row indices) are checked
  /// via `validate()` when the library is built with EXTDICT_CHECKS=ON, so a
  /// corrupt input fails here instead of scribbling out of bounds in `spmv`.
  static CscMatrix from_raw(Index rows, Index cols, std::vector<Index> col_ptr,
                            std::vector<Index> row_idx, std::vector<Real> values);

  /// Verifies the structural invariants: `col_ptr` has cols()+1 entries,
  /// starts at 0, is non-decreasing, ends at nnz(), and every row index is
  /// within [0, rows()). Throws util::ContractViolation on the first
  /// violation. O(nnz); intended for deserialisation boundaries and tests.
  void validate() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> col_ptr_;
  std::vector<Index> row_idx_;
  std::vector<Real> values_;
};

}  // namespace extdict::la
