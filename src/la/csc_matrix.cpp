#include "la/csc_matrix.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/contracts.hpp"

namespace extdict::la {

void CscMatrix::spmv_range(Index j0, Index j1, std::span<const Real> x,
                           std::span<Real> v) const {
  EXTDICT_REQUIRE_SHAPE(j0 >= 0 && j1 <= cols_ && j0 <= j1,
                        "spmv_range: column range [" + std::to_string(j0) +
                            ", " + std::to_string(j1) + ") of " +
                            std::to_string(cols_) + " columns");
  EXTDICT_REQUIRE_SHAPE(
      static_cast<Index>(x.size()) == j1 - j0 &&
          static_cast<Index>(v.size()) == rows_,
      "spmv_range: C is " + util::shape_string(rows_, cols_) + ", |x|=" +
          std::to_string(x.size()) + ", |v|=" + std::to_string(v.size()));
  for (Index j = j0; j < j1; ++j) {
    const Real xj = x[static_cast<std::size_t>(j - j0)];
    if (xj == Real{0}) continue;
    const auto rows = col_rows(j);
    const auto vals = col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXTDICT_HOT_ASSERT(rows[k] >= 0 && rows[k] < rows_,
                         "spmv_range: row index " + std::to_string(rows[k]) +
                             " out of range in column " + std::to_string(j) +
                             " (rows=" + std::to_string(rows_) + ")");
      v[static_cast<std::size_t>(rows[k])] += xj * vals[k];
    }
  }
}

// extdict-lint: allow(missing-shape-contract) shape-checked by spmv_range
void CscMatrix::spmv(std::span<const Real> x, std::span<Real> v) const {
  std::fill(v.begin(), v.end(), Real{0});
  spmv_range(0, cols_, x, v);
}

// extdict-lint: allow(missing-shape-contract) shape-checked by spmv_t_range
void CscMatrix::spmv_t(std::span<const Real> w, std::span<Real> y) const {
  spmv_t_range(0, cols_, w, y);
}

void CscMatrix::spmv_t_range(Index j0, Index j1, std::span<const Real> w,
                             std::span<Real> y) const {
  EXTDICT_REQUIRE_SHAPE(j0 >= 0 && j1 <= cols_ && j0 <= j1,
                        "spmv_t_range: column range [" + std::to_string(j0) +
                            ", " + std::to_string(j1) + ") of " +
                            std::to_string(cols_) + " columns");
  EXTDICT_REQUIRE_SHAPE(
      static_cast<Index>(w.size()) == rows_ &&
          static_cast<Index>(y.size()) == j1 - j0,
      "spmv_t_range: C is " + util::shape_string(rows_, cols_) + ", |w|=" +
          std::to_string(w.size()) + ", |y|=" + std::to_string(y.size()));
  const Index span = j1 - j0;
#pragma omp parallel for schedule(static) default(none) \
    shared(w, y, j0, j1, span) if (span > 1024)
  for (Index j = j0; j < j1; ++j) {
    const auto rows = col_rows(j);
    const auto vals = col_values(j);
    Real s = 0;
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXTDICT_HOT_ASSERT(rows[k] >= 0 && rows[k] < rows_,
                         "spmv_t_range: row index " + std::to_string(rows[k]) +
                             " out of range in column " + std::to_string(j) +
                             " (rows=" + std::to_string(rows_) + ")");
      s += vals[k] * w[static_cast<std::size_t>(rows[k])];
    }
    y[static_cast<std::size_t>(j - j0)] = s;
  }
}

CscMatrix CscMatrix::slice_columns(Index j0, Index j1) const {
  if (j0 < 0 || j1 > cols_ || j0 > j1) {
    throw std::out_of_range("CscMatrix::slice_columns: bad range");
  }
  CscMatrix out(rows_, j1 - j0);
  const auto b = col_ptr_[static_cast<std::size_t>(j0)];
  const auto e = col_ptr_[static_cast<std::size_t>(j1)];
  out.row_idx_.assign(row_idx_.begin() + b, row_idx_.begin() + e);
  out.values_.assign(values_.begin() + b, values_.begin() + e);
  for (Index j = j0; j <= j1; ++j) {
    out.col_ptr_[static_cast<std::size_t>(j - j0)] = col_ptr_[static_cast<std::size_t>(j)] - b;
  }
  return out;
}

Matrix CscMatrix::to_dense() const {
  Matrix d(rows_, cols_);
  for (Index j = 0; j < cols_; ++j) {
    const auto rows = col_rows(j);
    const auto vals = col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      d(rows[k], j) = vals[k];
    }
  }
  return d;
}

void CscMatrix::append_columns(const CscMatrix& right) {
  EXTDICT_REQUIRE_SHAPE(right.rows_ == rows_,
                        "CscMatrix::append_columns: left has " +
                            std::to_string(rows_) + " rows, right has " +
                            std::to_string(right.rows_));
  const Index base = static_cast<Index>(values_.size());
  row_idx_.insert(row_idx_.end(), right.row_idx_.begin(), right.row_idx_.end());
  values_.insert(values_.end(), right.values_.begin(), right.values_.end());
  col_ptr_.reserve(col_ptr_.size() + static_cast<std::size_t>(right.cols_));
  for (Index j = 1; j <= right.cols_; ++j) {
    col_ptr_.push_back(base + right.col_ptr_[static_cast<std::size_t>(j)]);
  }
  cols_ += right.cols_;
}

void CscMatrix::pad_rows(Index new_rows) {
  if (new_rows < rows_) {
    throw std::invalid_argument("CscMatrix::pad_rows: cannot shrink");
  }
  rows_ = new_rows;
}

CscMatrix::Builder::Builder(Index rows, Index cols)
    : rows_(rows),
      cols_(cols),
      col_ptr_(static_cast<std::size_t>(cols) + 1, 0) {}

void CscMatrix::Builder::add(Index row, Real value) {
  if (row < 0 || row >= rows_) {
    throw std::out_of_range("CscMatrix::Builder::add: row out of range");
  }
  pending_.emplace_back(row, value);
}

void CscMatrix::Builder::commit_column() {
  if (committed_ >= cols_) {
    throw std::logic_error("CscMatrix::Builder: too many columns committed");
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [row, value] : pending_) {
    row_idx_.push_back(row);
    values_.push_back(value);
  }
  pending_.clear();
  ++committed_;
  col_ptr_[static_cast<std::size_t>(committed_)] =
      static_cast<Index>(values_.size());
}

CscMatrix CscMatrix::Builder::build() && {
  while (committed_ < cols_) commit_column();
  CscMatrix m(rows_, cols_);
  m.col_ptr_ = std::move(col_ptr_);
  m.row_idx_ = std::move(row_idx_);
  m.values_ = std::move(values_);
  return m;
}

CscMatrix CscMatrix::from_raw(Index rows, Index cols,
                              std::vector<Index> col_ptr,
                              std::vector<Index> row_idx,
                              std::vector<Real> values) {
  if (rows < 0 || cols < 0) {
    throw std::invalid_argument("CscMatrix::from_raw: negative dimensions");
  }
  if (col_ptr.size() != static_cast<std::size_t>(cols) + 1 ||
      row_idx.size() != values.size()) {
    throw std::invalid_argument("CscMatrix::from_raw: array sizes inconsistent");
  }
  CscMatrix m(rows, cols);
  m.col_ptr_ = std::move(col_ptr);
  m.row_idx_ = std::move(row_idx);
  m.values_ = std::move(values);
  if (util::checks_enabled()) m.validate();
  return m;
}

void CscMatrix::validate() const {
  if (col_ptr_.size() != static_cast<std::size_t>(cols_) + 1) {
    throw util::ContractViolation(
        "CscMatrix::validate: col_ptr has " + std::to_string(col_ptr_.size()) +
        " entries for " + std::to_string(cols_) + " columns");
  }
  if (col_ptr_.front() != 0) {
    throw util::ContractViolation("CscMatrix::validate: col_ptr[0] != 0");
  }
  for (std::size_t j = 1; j < col_ptr_.size(); ++j) {
    if (col_ptr_[j] < col_ptr_[j - 1]) {
      throw util::ContractViolation(
          "CscMatrix::validate: col_ptr decreases at column " +
          std::to_string(j - 1));
    }
  }
  if (static_cast<std::size_t>(col_ptr_.back()) != values_.size() ||
      row_idx_.size() != values_.size()) {
    throw util::ContractViolation(
        "CscMatrix::validate: col_ptr.back()=" +
        std::to_string(col_ptr_.back()) + " but nnz=" +
        std::to_string(values_.size()));
  }
  for (std::size_t k = 0; k < row_idx_.size(); ++k) {
    if (row_idx_[k] < 0 || row_idx_[k] >= rows_) {
      throw util::ContractViolation(
          "CscMatrix::validate: row index " + std::to_string(row_idx_[k]) +
          " at nnz slot " + std::to_string(k) + " outside [0, " +
          std::to_string(rows_) + ")");
    }
  }
}

CscMatrix CscMatrix::from_columns(
    Index rows, const std::vector<std::vector<std::pair<Index, Real>>>& cols) {
  Builder b(rows, static_cast<Index>(cols.size()));
  for (const auto& column : cols) {
    for (const auto& [row, value] : column) b.add(row, value);
    b.commit_column();
  }
  return std::move(b).build();
}

}  // namespace extdict::la
