#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "la/blas.hpp"
#include "la/qr.hpp"
#include "util/contracts.hpp"

namespace extdict::la {

// extdict-lint: allow(missing-shape-contract) any matrix shape is valid input
SvdResult jacobi_svd(const Matrix& a, Real tol, int max_sweeps) {
  // One-sided Jacobi: orthogonalise the columns of W = A * V by plane
  // rotations; singular values are the final column norms.
  EXTDICT_CHECK_FINITE(
      std::span<const Real>(a.data(), static_cast<std::size_t>(a.size())),
      "jacobi_svd: input matrix");
  const Index m = a.rows();
  const Index n = a.cols();
  Matrix w = a;
  Matrix v(n, n);
  for (Index i = 0; i < n; ++i) v(i, i) = 1;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        const Real app = dot(w.col(p), w.col(p));
        const Real aqq = dot(w.col(q), w.col(q));
        const Real apq = dot(w.col(p), w.col(q));
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == Real{0}) {
          continue;
        }
        converged = false;
        const Real tau = (aqq - app) / (2 * apq);
        const Real t = (tau >= 0 ? Real{1} : Real{-1}) /
                       (std::abs(tau) + std::sqrt(1 + tau * tau));
        const Real c = 1 / std::sqrt(1 + t * t);
        const Real s = c * t;
        for (Index i = 0; i < m; ++i) {
          const Real wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (Index i = 0; i < n; ++i) {
          const Real vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values (column norms of W) and sort descending.
  Vector sigma(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) sigma[static_cast<std::size_t>(j)] = nrm2(w.col(j));
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index x, Index y) {
    return sigma[static_cast<std::size_t>(x)] > sigma[static_cast<std::size_t>(y)];
  });

  SvdResult out;
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  out.s.resize(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    const Index src = order[static_cast<std::size_t>(j)];
    const Real sg = sigma[static_cast<std::size_t>(src)];
    out.s[static_cast<std::size_t>(j)] = sg;
    for (Index i = 0; i < m; ++i) {
      out.u(i, j) = sg > Real{0} ? w(i, src) / sg : Real{0};
    }
    for (Index i = 0; i < n; ++i) out.v(i, j) = v(i, src);
  }
  return out;
}

namespace {

// Thin QR-based orthonormalisation of the columns of `y` (in place result).
Matrix orthonormalize(const Matrix& y) {
  HouseholderQr qr(y);
  // Build Q explicitly by applying reflectors to the identity columns.
  // Cheaper trick for thin Q: solve against canonical basis is wasteful;
  // instead use modified Gram-Schmidt here — y has few columns.
  Matrix q = y;
  for (Index j = 0; j < q.cols(); ++j) {
    auto cj = q.col(j);
    for (Index k = 0; k < j; ++k) {
      const Real r = dot(q.col(k), cj);
      axpy(-r, q.col(k), cj);
    }
    // Second pass for numerical robustness (MGS twice ≈ Householder).
    for (Index k = 0; k < j; ++k) {
      const Real r = dot(q.col(k), cj);
      axpy(-r, q.col(k), cj);
    }
    const Real norm = nrm2(cj);
    if (norm > Real{0}) scal(1 / norm, cj);
  }
  return q;
}

}  // namespace

SvdResult randomized_svd(const Matrix& a, Index k, Rng& rng, int power_iters,
                         Index oversample) {
  const Index m = a.rows();
  const Index n = a.cols();
  const Index p = std::min(n, k + oversample);
  EXTDICT_REQUIRE_SHAPE(k > 0 && k <= std::min(m, n),
                        "randomized_svd: rank k=" + std::to_string(k) +
                            " outside [1, min(" + std::to_string(m) + ", " +
                            std::to_string(n) + ")]");

  // Sketch Y = A * Omega, then subspace iterations Y <- A (A^T Y).
  Matrix omega = rng.gaussian_matrix(n, p);
  Matrix y = matmul(a, omega);
  for (int it = 0; it < power_iters; ++it) {
    Matrix q = orthonormalize(y);
    Matrix z = matmul(a, q, Trans::kYes, Trans::kNo);  // n x p
    Matrix qz = orthonormalize(z);
    y = matmul(a, qz);  // m x p
  }
  Matrix q = orthonormalize(y);

  // Small projected problem B = Q^T A (p x n); SVD of B via Jacobi on B^T.
  Matrix b = matmul(q, a, Trans::kYes, Trans::kNo);
  SvdResult small = jacobi_svd(b.transposed());
  // b^T = U_s S V_s^T with U_s (n x p), V_s (p x p). Then
  // A ≈ Q b = Q V_s S U_s^T, so U = Q * V_s, V = U_s.
  Matrix u_full = matmul(q, small.v);

  SvdResult out;
  out.u = Matrix(m, k);
  out.v = Matrix(n, k);
  out.s.assign(static_cast<std::size_t>(k), Real{0});
  for (Index j = 0; j < k; ++j) {
    out.s[static_cast<std::size_t>(j)] = small.s[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m; ++i) out.u(i, j) = u_full(i, j);
    for (Index i = 0; i < n; ++i) out.v(i, j) = small.u(i, j);
  }
  return out;
}

// extdict-lint: allow(missing-shape-contract) any matrix shape is valid input
Real spectral_norm(const Matrix& a, Rng& rng, int iters) {
  Vector x(static_cast<std::size_t>(a.cols()));
  rng.fill_gaussian(x);
  Vector ax(static_cast<std::size_t>(a.rows()));
  Real lambda = 0;
  for (int it = 0; it < iters; ++it) {
    gemv(1, a, x, 0, ax);
    gemv_t(1, a, ax, 0, x);
    lambda = nrm2(x);
    if (lambda == Real{0}) return 0;
    scal(1 / lambda, x);
  }
  return std::sqrt(lambda);
}

// extdict-lint: allow(missing-shape-contract) k is clamped by the tail sum; any matrix shape is valid
Real rank_k_error(const Matrix& a, Index k) {
  SvdResult svd = jacobi_svd(a);
  Real ssq = 0;
  for (std::size_t i = static_cast<std::size_t>(k); i < svd.s.size(); ++i) {
    ssq += svd.s[i] * svd.s[i];
  }
  return std::sqrt(ssq);
}

}  // namespace extdict::la
