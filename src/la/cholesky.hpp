#pragma once

#include <span>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::la {

/// Dense Cholesky factorisation A = L * L^T for symmetric positive-definite A.
///
/// Besides the one-shot factor/solve, `ProgressiveCholesky` supports growing
/// the factor one row/column at a time — the key primitive of Batch-OMP
/// (Rubinstein et al., 2008), where each greedy iteration enlarges the
/// selected-atom Gram matrix by one.
class Cholesky {
 public:
  /// Factors `a` (must be square SPD). Throws std::domain_error if a pivot
  /// is not strictly positive.
  explicit Cholesky(const Matrix& a);

  /// Solves A x = b in place.
  void solve_in_place(std::span<Real> b) const;

  [[nodiscard]] Vector solve(std::span<const Real> b) const;

  [[nodiscard]] const Matrix& factor() const noexcept { return l_; }

 private:
  Matrix l_;  // lower triangular
};

/// Incrementally grown Cholesky factor of a Gram submatrix.
///
/// Maintains L such that G_S = L L^T for the currently selected index set S.
/// `append` adds one index given the new column of G_S (i.e. the inner
/// products of the new atom against the already-selected ones plus itself).
class ProgressiveCholesky {
 public:
  /// `capacity` is the maximum number of atoms ever selected (pre-allocates
  /// the triangular factor once; no reallocation in the OMP hot loop).
  explicit ProgressiveCholesky(Index capacity);

  /// Current size of the factor.
  [[nodiscard]] Index size() const noexcept { return n_; }

  /// Grows the factor with a new atom. `g_new` holds the inner products of
  /// the new atom with the `size()` already-selected atoms; `g_diag` is the
  /// atom's self inner product. Returns false (leaving the factor unchanged)
  /// if the Schur complement is numerically non-positive, which signals that
  /// the new atom is linearly dependent on the selection.
  bool append(std::span<const Real> g_new, Real g_diag);

  /// Solves (L L^T) x = b for the current size; b.size() == size().
  void solve_in_place(std::span<Real> b) const;

  /// Forward-substitution only: L w = b.
  void solve_lower(std::span<Real> b) const;

  /// Back-substitution only: L^T x = w.
  void solve_lower_t(std::span<Real> b) const;

  void reset() noexcept { n_ = 0; }

 private:
  Index capacity_;
  Index n_ = 0;
  // Row-major packed lower triangle: row i occupies l_[i*(i+1)/2 .. +i].
  std::vector<Real> l_;

  [[nodiscard]] Real at(Index i, Index j) const noexcept {
    return l_[static_cast<std::size_t>(i * (i + 1) / 2 + j)];
  }
  Real& at(Index i, Index j) noexcept {
    return l_[static_cast<std::size_t>(i * (i + 1) / 2 + j)];
  }
};

}  // namespace extdict::la
