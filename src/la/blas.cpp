#include "la/blas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/contracts.hpp"

namespace extdict::la {

// extdict-lint: allow(missing-shape-contract) BLAS-1, noexcept: EXTDICT_ASSERT terminates instead of throwing (docs/CORRECTNESS.md)
void axpy(Real alpha, std::span<const Real> x, std::span<Real> y) noexcept {
  EXTDICT_ASSERT(x.size() == y.size(),
                 "axpy: |x|=" + std::to_string(x.size()) +
                     " |y|=" + std::to_string(y.size()));
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

// extdict-lint: allow(missing-shape-contract) any length is valid
void scal(Real alpha, std::span<Real> x) noexcept {
  for (Real& v : x) v *= alpha;
}

// extdict-lint: allow(missing-shape-contract) BLAS-1, noexcept: EXTDICT_ASSERT terminates instead of throwing (docs/CORRECTNESS.md)
Real dot(std::span<const Real> x, std::span<const Real> y) noexcept {
  EXTDICT_ASSERT(x.size() == y.size(),
                 "dot: |x|=" + std::to_string(x.size()) +
                     " |y|=" + std::to_string(y.size()));
  Real s = 0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

// extdict-lint: allow(missing-shape-contract) any length is valid
Real nrm2(std::span<const Real> x) noexcept {
  Real scale = 0, ssq = 1;
  for (Real v : x) {
    if (v == Real{0}) continue;
    const Real a = std::abs(v);
    if (scale < a) {
      ssq = 1 + ssq * (scale / a) * (scale / a);
      scale = a;
    } else {
      ssq += (a / scale) * (a / scale);
    }
  }
  return scale * std::sqrt(ssq);
}

// extdict-lint: allow(missing-shape-contract) any length is valid (empty -> -1)
Index iamax(std::span<const Real> x) noexcept {
  if (x.empty()) return -1;
  Index best = 0;
  Real best_val = std::abs(x[0]);
  for (std::size_t i = 1; i < x.size(); ++i) {
    const Real a = std::abs(x[i]);
    if (a > best_val) {
      best_val = a;
      best = static_cast<Index>(i);
    }
  }
  return best;
}

void gemv(Real alpha, const Matrix& a, std::span<const Real> x, Real beta,
          std::span<Real> y) {
  EXTDICT_REQUIRE_SHAPE(
      static_cast<Index>(x.size()) == a.cols() &&
          static_cast<Index>(y.size()) == a.rows(),
      "gemv: A is " + util::shape_string(a.rows(), a.cols()) + ", |x|=" +
          std::to_string(x.size()) + ", |y|=" + std::to_string(y.size()));
  EXTDICT_CHECK_FINITE(x, "gemv: x");
  if (beta == Real{0}) {
    std::fill(y.begin(), y.end(), Real{0});
  } else if (beta != Real{1}) {
    scal(beta, y);
  }
  // Column-major: accumulate alpha * x_j * A(:,j) into y. Sequential over
  // columns (races on y otherwise); columns themselves are contiguous.
  for (Index j = 0; j < a.cols(); ++j) {
    const Real axj = alpha * x[static_cast<std::size_t>(j)];
    if (axj == Real{0}) continue;
    axpy(axj, a.col(j), y);
  }
}

void gemv_t(Real alpha, const Matrix& a, std::span<const Real> x, Real beta,
            std::span<Real> y) {
  EXTDICT_REQUIRE_SHAPE(
      static_cast<Index>(x.size()) == a.rows() &&
          static_cast<Index>(y.size()) == a.cols(),
      "gemv_t: A is " + util::shape_string(a.rows(), a.cols()) + ", |x|=" +
          std::to_string(x.size()) + ", |y|=" + std::to_string(y.size()));
  EXTDICT_CHECK_FINITE(x, "gemv_t: x");
  const Index cols = a.cols();
#pragma omp parallel for schedule(static) default(none) \
    shared(a, x, y, alpha, beta, cols) if (cols > 256)
  for (Index j = 0; j < cols; ++j) {
    const Real d = dot(a.col(j), x);
    auto& yj = y[static_cast<std::size_t>(j)];
    yj = alpha * d + (beta == Real{0} ? Real{0} : beta * yj);
  }
}

namespace {

// Resolves op(A) dimensions.
Index op_rows(const Matrix& a, Trans t) { return t == Trans::kNo ? a.rows() : a.cols(); }
Index op_cols(const Matrix& a, Trans t) { return t == Trans::kNo ? a.cols() : a.rows(); }
Real op_at(const Matrix& a, Trans t, Index i, Index j) {
  return t == Trans::kNo ? a(i, j) : a(j, i);
}

}  // namespace

void gemm(Real alpha, const Matrix& a, Trans ta, const Matrix& b, Trans tb,
          Real beta, Matrix& c) {
  const Index m = op_rows(a, ta);
  const Index k = op_cols(a, ta);
  const Index n = op_cols(b, tb);
  EXTDICT_REQUIRE_SHAPE(
      op_rows(b, tb) == k && c.rows() == m && c.cols() == n,
      "gemm: op(A) is " + util::shape_string(m, k) + ", op(B) is " +
          util::shape_string(op_rows(b, tb), op_cols(b, tb)) + ", C is " +
          util::shape_string(c.rows(), c.cols()));

  // Fast path: no transposes. Accumulate rank-1 style per column of C, which
  // streams contiguous columns of A — this is the shape ExtDict hits in the
  // hot loop (D * V, etc.).
  if (ta == Trans::kNo && tb == Trans::kNo) {
#pragma omp parallel for schedule(static) default(none) \
    shared(a, b, c, alpha, beta, n, k) if (n > 1)
    for (Index j = 0; j < n; ++j) {
      auto cj = c.col(j);
      if (beta == Real{0}) {
        std::fill(cj.begin(), cj.end(), Real{0});
      } else if (beta != Real{1}) {
        scal(beta, cj);
      }
      for (Index l = 0; l < k; ++l) {
        const Real ab = alpha * b(l, j);
        if (ab == Real{0}) continue;
        axpy(ab, a.col(l), cj);
      }
    }
    return;
  }

  // A^T * B: each C(i,j) is a dot of two contiguous columns.
  if (ta == Trans::kYes && tb == Trans::kNo) {
#pragma omp parallel for schedule(static) default(none) \
    shared(a, b, c, alpha, beta, n, m) if (n > 1)
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < m; ++i) {
        const Real d = dot(a.col(i), b.col(j));
        Real& cij = c(i, j);
        cij = alpha * d + (beta == Real{0} ? Real{0} : beta * cij);
      }
    }
    return;
  }

  // Generic fallback for the remaining transpose combinations.
#pragma omp parallel for schedule(static) default(none) \
    shared(a, ta, b, tb, c, alpha, beta, m, n, k) if (n > 1)
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < m; ++i) {
      Real s = 0;
      for (Index l = 0; l < k; ++l) s += op_at(a, ta, i, l) * op_at(b, tb, l, j);
      Real& cij = c(i, j);
      cij = alpha * s + (beta == Real{0} ? Real{0} : beta * cij);
    }
  }
}

// extdict-lint: allow(missing-shape-contract) shape-checked by gemm
Matrix matmul(const Matrix& a, const Matrix& b, Trans ta, Trans tb) {
  Matrix c(op_rows(a, ta), op_cols(b, tb));
  gemm(Real{1}, a, ta, b, tb, Real{0}, c);
  return c;
}

// extdict-lint: allow(missing-shape-contract) any matrix has a Gram matrix
Matrix gram(const Matrix& a) {
  const Index n = a.cols();
  Matrix g(n, n);
#pragma omp parallel for schedule(dynamic, 8) default(none) shared(a, g, n) \
    if (n > 1)
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i <= j; ++i) {
      g(i, j) = dot(a.col(i), a.col(j));
    }
  }
  for (Index j = 0; j < n; ++j) {
    for (Index i = j + 1; i < n; ++i) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace extdict::la
