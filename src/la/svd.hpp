#pragma once

#include "la/matrix.hpp"
#include "la/random.hpp"
#include "la/types.hpp"

namespace extdict::la {

/// Result of a (possibly truncated) singular value decomposition
/// A ≈ U * diag(S) * V^T with singular values in non-increasing order.
struct SvdResult {
  Matrix u;  // rows x k
  Vector s;  // k
  Matrix v;  // cols x k
};

/// One-sided Jacobi SVD (full decomposition). Accurate but O(M N^2) with a
/// hefty constant; intended for validation, small problems, and computing
/// reference eigen-spectra for the PCA error figures.
[[nodiscard]] SvdResult jacobi_svd(const Matrix& a, Real tol = 1e-12,
                                   int max_sweeps = 60);

/// Randomized truncated SVD (Halko/Martinsson/Tropp): rank-k approximation
/// via Gaussian sketching and `power_iters` subspace iterations. This is the
/// classic dimensionality-reduction baseline the paper calls "infeasible at
/// scale" for full rank but which we include for reference spectra and the
/// RCSS error bound checks.
[[nodiscard]] SvdResult randomized_svd(const Matrix& a, Index k, Rng& rng,
                                       int power_iters = 2, Index oversample = 8);

/// Spectral norm estimate via power iteration on A^T A.
[[nodiscard]] Real spectral_norm(const Matrix& a, Rng& rng, int iters = 50);

/// Best rank-k approximation error ||A - A_k||_F derived from a full Jacobi
/// SVD (used to validate the CSS sampling bound discussion in §V.C).
[[nodiscard]] Real rank_k_error(const Matrix& a, Index k);

}  // namespace extdict::la
