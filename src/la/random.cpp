#include "la/random.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace extdict::la {

std::vector<Index> Rng::sample_without_replacement(Index n, Index count) {
  if (count > n || count < 0) {
    throw std::invalid_argument("sample_without_replacement: count > n");
  }
  // Partial Fisher-Yates: O(n) memory but only `count` swaps; fine at the
  // problem sizes the library targets and exactly uniform.
  std::vector<Index> pool(static_cast<std::size_t>(n));
  std::iota(pool.begin(), pool.end(), Index{0});
  for (Index i = 0; i < count; ++i) {
    const Index j = uniform_index(i, n - 1);
    std::swap(pool[static_cast<std::size_t>(i)], pool[static_cast<std::size_t>(j)]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

std::vector<Index> Rng::permutation(Index n) {
  std::vector<Index> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), Index{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

Matrix Rng::gaussian_matrix(Index rows, Index cols, bool normalize_columns) {
  Matrix m(rows, cols);
  fill_gaussian({m.data(), static_cast<std::size_t>(m.size())});
  if (normalize_columns) m.normalize_columns();
  return m;
}

}  // namespace extdict::la
