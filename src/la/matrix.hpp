#pragma once

#include <cassert>
#include <initializer_list>
#include <span>
#include <vector>

#include "la/types.hpp"
#include "util/contracts.hpp"

namespace extdict::la {

/// Dense column-major matrix of `Real`.
///
/// Column-major is the natural layout for ExtDict: data matrices are
/// collections of column signals, dictionaries are formed by sampling
/// columns, and the sparse coder works column-by-column. `col(j)` hands out a
/// contiguous `std::span` with no copies.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows x cols` matrix initialised to zero.
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), Real{0}) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Builds from a row-major initialiser list (convenient in tests):
  /// Matrix::from_rows({{1,2},{3,4}}).
  static Matrix from_rows(std::initializer_list<std::initializer_list<Real>> rows);

  [[nodiscard]] Index rows() const noexcept { return rows_; }
  [[nodiscard]] Index cols() const noexcept { return cols_; }
  [[nodiscard]] Index size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  Real& operator()(Index i, Index j) noexcept {
    EXTDICT_HOT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                       "Matrix(i, j): (" + std::to_string(i) + ", " +
                           std::to_string(j) + ") outside " +
                           util::shape_string(rows_, cols_));
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  Real operator()(Index i, Index j) const noexcept {
    EXTDICT_HOT_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                       "Matrix(i, j): (" + std::to_string(i) + ", " +
                           std::to_string(j) + ") outside " +
                           util::shape_string(rows_, cols_));
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  /// Contiguous view of column `j`.
  [[nodiscard]] std::span<Real> col(Index j) noexcept {
    EXTDICT_HOT_ASSERT(j >= 0 && j < cols_,
                       "Matrix::col: column " + std::to_string(j) + " of " +
                           std::to_string(cols_));
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }
  [[nodiscard]] std::span<const Real> col(Index j) const noexcept {
    EXTDICT_HOT_ASSERT(j >= 0 && j < cols_,
                       "Matrix::col: column " + std::to_string(j) + " of " +
                           std::to_string(cols_));
    return {data_.data() + j * rows_, static_cast<std::size_t>(rows_)};
  }

  [[nodiscard]] Real* data() noexcept { return data_.data(); }
  [[nodiscard]] const Real* data() const noexcept { return data_.data(); }

  void set_zero() noexcept { std::fill(data_.begin(), data_.end(), Real{0}); }

  /// Copies the columns whose indices are listed in `idx` (in order) into a
  /// new `rows() x idx.size()` matrix. This is how dictionaries are formed.
  [[nodiscard]] Matrix select_columns(std::span<const Index> idx) const;

  /// Copies the rows whose indices are listed in `idx` into a new matrix
  /// (used by the super-resolution app and SGD mini-batching).
  [[nodiscard]] Matrix select_rows(std::span<const Index> idx) const;

  /// Returns the transpose as a new matrix.
  [[nodiscard]] Matrix transposed() const;

  /// Appends the columns of `other` on the right (rows must match). Used by
  /// the evolving-data update (Fig. 3 zero-padding scheme).
  void append_columns(const Matrix& other);

  /// Frobenius norm.
  [[nodiscard]] Real frobenius_norm() const noexcept;

  /// Scales each column to unit Euclidean norm in place; zero columns are
  /// left untouched. The ExD algorithm expects a normalised input matrix.
  void normalize_columns();

  /// Number of `Real` words stored (memory-footprint accounting).
  [[nodiscard]] std::uint64_t memory_words() const noexcept {
    return static_cast<std::uint64_t>(data_.size());
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Real> data_;
};

/// Dense vector of `Real`. Thin wrapper over std::vector that interoperates
/// with `std::span`-based kernels.
using Vector = std::vector<Real>;

/// Max |a_ij - b_ij| over all entries; matrices must have equal shape.
Real max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace extdict::la
