#include "la/io.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>

namespace extdict::la {

namespace {

constexpr char kArrayHeader[] = "%%MatrixMarket matrix array real general";
constexpr char kCoordHeader[] = "%%MatrixMarket matrix coordinate real general";

std::ifstream open_input(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("matrix market: cannot open " + path);
  return in;
}

std::ofstream open_output(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("matrix market: cannot create " + path);
  return out;
}

// Reads the banner line and skips comment lines; returns the banner.
std::string read_banner(std::ifstream& in, const std::string& path) {
  std::string banner;
  if (!std::getline(in, banner)) {
    throw std::runtime_error("matrix market: empty file " + path);
  }
  std::string line;
  while (in.peek() == '%') std::getline(in, line);
  return banner;
}

}  // namespace

// extdict-lint: allow(missing-shape-contract) any matrix is serialisable; I/O errors are std::runtime_error
void write_matrix_market(const Matrix& a, const std::string& path) {
  std::ofstream out = open_output(path);
  out << kArrayHeader << '\n';
  out << a.rows() << ' ' << a.cols() << '\n';
  out.precision(17);
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index i = 0; i < a.rows(); ++i) out << a(i, j) << '\n';
  }
  if (!out) throw std::runtime_error("matrix market: write failed " + path);
}

// extdict-lint: allow(missing-shape-contract) any matrix is serialisable; I/O errors are std::runtime_error
void write_matrix_market(const CscMatrix& a, const std::string& path) {
  std::ofstream out = open_output(path);
  out << kCoordHeader << '\n';
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (Index j = 0; j < a.cols(); ++j) {
    const auto rows = a.col_rows(j);
    const auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      out << rows[k] + 1 << ' ' << j + 1 << ' ' << vals[k] << '\n';
    }
  }
  if (!out) throw std::runtime_error("matrix market: write failed " + path);
}

namespace {

// A header whose claimed payload could not possibly fit in the file is
// corrupt; reject it before allocating. Each dense entry / coordinate line
// needs at least two bytes of text ("0\n"), so file size bounds the entry
// count. Keeps a malformed header from triggering a multi-gigabyte
// allocation (or Index overflow) on a kilobyte file.
void check_claimed_entries(const std::string& path, std::uint64_t entries,
                           const char* what) {
  std::error_code ec;
  const std::uint64_t bytes = std::filesystem::file_size(path, ec);
  if (!ec && entries > bytes) {
    throw std::runtime_error(std::string("matrix market: ") + what +
                             " count exceeds file size in " + path);
  }
}

constexpr Index kMaxDim = Index{1} << 31;  // sanity cap on a single dimension

}  // namespace

Matrix read_matrix_market_dense(const std::string& path) {
  std::ifstream in = open_input(path);
  const std::string banner = read_banner(in, path);
  if (banner.find("array") == std::string::npos) {
    throw std::runtime_error("matrix market: not an array file: " + path);
  }
  Index rows = 0, cols = 0;
  if (!(in >> rows >> cols) || rows < 0 || cols < 0) {
    throw std::runtime_error("matrix market: bad dimensions in " + path);
  }
  if (rows > kMaxDim || cols > kMaxDim) {
    throw std::runtime_error("matrix market: implausible dimensions in " + path);
  }
  check_claimed_entries(path,
                        static_cast<std::uint64_t>(rows) *
                            static_cast<std::uint64_t>(cols),
                        "entry");
  Matrix a(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    for (Index i = 0; i < rows; ++i) {
      if (!(in >> a(i, j))) {
        throw std::runtime_error("matrix market: truncated payload in " + path);
      }
    }
  }
  return a;
}

CscMatrix read_matrix_market_sparse(const std::string& path) {
  std::ifstream in = open_input(path);
  const std::string banner = read_banner(in, path);
  if (banner.find("coordinate") == std::string::npos) {
    throw std::runtime_error("matrix market: not a coordinate file: " + path);
  }
  Index rows = 0, cols = 0;
  std::uint64_t nnz = 0;
  if (!(in >> rows >> cols >> nnz) || rows < 0 || cols < 0) {
    throw std::runtime_error("matrix market: bad header in " + path);
  }
  if (rows > kMaxDim || cols > kMaxDim) {
    throw std::runtime_error("matrix market: implausible dimensions in " + path);
  }
  check_claimed_entries(path, nnz, "nonzero");
  // Collect per column; duplicates summed.
  std::vector<std::map<Index, Real>> columns(static_cast<std::size_t>(cols));
  for (std::uint64_t k = 0; k < nnz; ++k) {
    Index i = 0, j = 0;
    Real v = 0;
    if (!(in >> i >> j >> v)) {
      throw std::runtime_error("matrix market: truncated payload in " + path);
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw std::runtime_error("matrix market: index out of range in " + path);
    }
    columns[static_cast<std::size_t>(j - 1)][i - 1] += v;
  }
  CscMatrix::Builder builder(rows, cols);
  for (Index j = 0; j < cols; ++j) {
    for (const auto& [row, value] : columns[static_cast<std::size_t>(j)]) {
      builder.add(row, value);
    }
    builder.commit_column();
  }
  return std::move(builder).build();
}

namespace {
constexpr std::uint64_t kBinaryMagic = 0x4558544449435401ULL;  // "EXTDICT\x01"
}

// extdict-lint: allow(missing-shape-contract) any matrix is serialisable; I/O errors are std::runtime_error
void write_binary(const Matrix& a, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_binary: cannot create " + path);
  const std::uint64_t header[3] = {kBinaryMagic,
                                   static_cast<std::uint64_t>(a.rows()),
                                   static_cast<std::uint64_t>(a.cols())};
  out.write(reinterpret_cast<const char*>(header), sizeof(header));
  if (a.size() > 0) {  // empty matrix: data() may be null, skip the write
    out.write(reinterpret_cast<const char*>(a.data()),
              static_cast<std::streamsize>(a.size() * static_cast<Index>(sizeof(Real))));
  }
  if (!out) throw std::runtime_error("write_binary: write failed " + path);
}

Matrix read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_binary: cannot open " + path);
  std::uint64_t header[3] = {};
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  if (!in || header[0] != kBinaryMagic) {
    throw std::runtime_error("read_binary: bad magic in " + path);
  }
  // Validate the claimed shape against the actual payload size BEFORE
  // allocating: a corrupt header must produce a clean error, not an Index
  // overflow or a wild allocation.
  const std::uint64_t rows = header[1];
  const std::uint64_t cols = header[2];
  if (rows > static_cast<std::uint64_t>(kMaxDim) ||
      cols > static_cast<std::uint64_t>(kMaxDim) ||
      (cols != 0 &&
       rows > std::numeric_limits<std::uint64_t>::max() / sizeof(Real) / cols)) {
    throw std::runtime_error("read_binary: implausible dimensions in " + path);
  }
  const std::uint64_t payload_bytes = rows * cols * sizeof(Real);
  std::error_code ec;
  const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);
  if (ec || file_bytes != sizeof(header) + payload_bytes) {
    throw std::runtime_error("read_binary: payload size mismatch in " + path);
  }
  Matrix a(static_cast<Index>(rows), static_cast<Index>(cols));
  if (payload_bytes > 0) {  // empty matrix: data() may be null, skip the read
    in.read(reinterpret_cast<char*>(a.data()),
            static_cast<std::streamsize>(payload_bytes));
    if (!in) {
      throw std::runtime_error("read_binary: truncated payload " + path);
    }
  }
  return a;
}

}  // namespace extdict::la
