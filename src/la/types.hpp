#pragma once

#include <cstddef>
#include <cstdint>

namespace extdict::la {

/// Scalar type used throughout the library. The paper's cost model counts
/// "words"; one word == one `Real`.
using Real = double;

/// Index type for matrix dimensions and sparse structures. Signed to allow
/// safe arithmetic in loop bounds (per C++ Core Guidelines ES.100-ish usage
/// of one consistent signed index type).
using Index = std::ptrdiff_t;

}  // namespace extdict::la
