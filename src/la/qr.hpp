#pragma once

#include <span>

#include "la/matrix.hpp"
#include "la/types.hpp"

namespace extdict::la {

/// Householder QR factorisation of a tall (rows >= cols) matrix, used for
/// least-squares solves: the pseudo-inverse application `D⁺ a` in the OMP
/// reference path, RCSS's dense projection `C = D⁺ A`, and tests.
class HouseholderQr {
 public:
  /// Factors `a` (rows >= cols required). The factorisation is stored
  /// compactly (Householder vectors below the diagonal of R).
  explicit HouseholderQr(Matrix a);

  [[nodiscard]] Index rows() const noexcept { return qr_.rows(); }
  [[nodiscard]] Index cols() const noexcept { return qr_.cols(); }

  /// Least-squares solution of min_x ||A x - b||_2; b.size() == rows().
  [[nodiscard]] Vector solve(std::span<const Real> b) const;

  /// Solves for every column of B at once; returns the cols() x B.cols()
  /// solution matrix.
  [[nodiscard]] Matrix solve_many(const Matrix& b) const;

  /// Rank estimate from the magnitude of R's diagonal relative to the
  /// largest diagonal entry.
  [[nodiscard]] Index rank(Real rel_tol = 1e-10) const;

 private:
  Matrix qr_;    // Householder vectors + R
  Vector beta_;  // Householder scalars

  void apply_qt(std::span<Real> v) const;          // v := Q^T v
  void back_substitute(std::span<Real> v) const;   // R x = v(0..cols)
};

/// Convenience one-shot least squares: returns argmin_x ||A x - b||.
[[nodiscard]] Vector least_squares(const Matrix& a, std::span<const Real> b);

}  // namespace extdict::la
