// Quickstart: the whole ExtDict workflow in ~60 lines.
//
//   1. Load (here: synthesise) a dense, massively correlated dataset A.
//   2. Pick the target platform and the transformation error budget.
//   3. `ExtDict::preprocess` tunes the Extensible Dictionary for that
//      platform and projects A ≈ D·C with C sparse.
//   4. Plug the transformed Gram operator into any iterative solver — here
//      a handful of Power-method steps — or run it distributed.
//
// Build & run:  ./quickstart

#include <cstdio>

#include "core/extdict.hpp"
#include "data/datasets.hpp"
#include "solvers/power_method.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace extdict;

  // 1. A dense dataset with hidden union-of-subspace structure (a scaled
  //    stand-in for the paper's 87.9 MB Salina hyperspectral scene).
  const la::Matrix a =
      data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  std::printf("dataset: %td x %td (dense)\n", a.rows(), a.cols());

  // 2. Target platform: 2 nodes x 8 cores of the emulated cluster.
  const auto platform = dist::PlatformSpec::idataplex({.nodes = 2, .cores_per_node = 8});

  // 3. Platform-aware preprocessing with a 10% transformation error budget.
  core::ExtDict::Options options;
  options.tolerance = 0.1;
  const auto engine = core::ExtDict::preprocess(a, platform, options);
  std::printf("tuned dictionary size L* = %td (error %.4f, alpha %.2f nnz/col)\n",
              engine.tuned_l(), engine.transform().transformation_error,
              engine.transform().alpha());
  std::printf("preprocessing took %s\n",
              util::format_duration_ms(engine.preprocessing_ms()).c_str());

  // 4a. Serial use: hand the Gram operator to an iterative algorithm.
  solvers::PowerConfig power;
  power.num_eigenpairs = 3;
  const auto spectrum = solvers::power_method(engine.gram_operator(), power);
  for (std::size_t i = 0; i < spectrum.eigenvalues.size(); ++i) {
    std::printf("eigenvalue %zu of A^T A ~= %.6f\n", i + 1,
                spectrum.eigenvalues[i]);
  }

  // 4b. Distributed use: the same update as an SPMD run with exact cost
  //     accounting (Algorithm 2 of the paper).
  la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
  const auto run = engine.run_gram_iterations(x0, 5);
  std::printf("5 distributed Gram updates: %s total FLOPs, %s words moved\n",
              util::fmt_count(run.stats.total_flops()).c_str(),
              util::fmt_count(run.stats.total_words()).c_str());
  std::printf("modeled runtime on %s: %.3f ms\n", platform.name.c_str(),
              platform.modeled_seconds(run.stats) * 1e3);
  return 0;
}
