// Large-scale PCA via the Power method (the paper's third application):
// computes the top-10 eigenvalues of AᵀA once on the original data and
// once through the ExtDict projection, comparing accuracy and the paper's
// three cost metrics.

#include <cstdio>

#include "core/dist_gram.hpp"
#include "core/extdict.hpp"
#include "data/datasets.hpp"
#include "solvers/power_method.hpp"
#include "util/table.hpp"

int main() {
  using namespace extdict;

  const la::Matrix a =
      data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  std::printf("dataset: %td x %td\n", a.rows(), a.cols());

  const auto platform = dist::PlatformSpec::idataplex({.nodes = 2, .cores_per_node = 8});
  core::ExtDict::Options options;
  options.tolerance = 0.05;
  const auto engine = core::ExtDict::preprocess(a, platform, options);

  solvers::PowerConfig power;
  power.num_eigenpairs = 10;
  power.tolerance = 1e-8;

  core::DenseGramOperator dense(a);
  const auto baseline = solvers::power_method(dense, power);
  const auto transformed = solvers::power_method(engine.gram_operator(), power);

  util::Table table({"#", "eigenvalue (A^T A)", "eigenvalue ((DC)^T DC)", "rel err"});
  for (std::size_t i = 0; i < baseline.eigenvalues.size(); ++i) {
    const double ref = baseline.eigenvalues[i];
    const double got = i < transformed.eigenvalues.size()
                           ? transformed.eigenvalues[i]
                           : 0.0;
    table.add_row({std::to_string(i + 1), util::fmt(ref, 6), util::fmt(got, 6),
                   util::fmt(ref != 0 ? std::abs(got - ref) / ref : 0.0, 3)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("cumulative top-10 eigenvalue error: %.5f\n",
              solvers::eigenvalue_error(transformed.eigenvalues,
                                        baseline.eigenvalues));

  // Per-iteration cost of the two pipelines on the chosen platform.
  la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
  const dist::Cluster cluster(platform.topology);
  const auto run_t = engine.run_gram_iterations(x0, 1);
  const auto run_o = core::dist_gram_apply_original(cluster, a, x0, 1);
  std::printf("per-iteration modeled time: original %.4f ms, ExtDict %.4f ms (%.1fx)\n",
              platform.modeled_seconds(run_o.stats) * 1e3,
              platform.modeled_seconds(run_t.stats) * 1e3,
              platform.modeled_seconds(run_o.stats) /
                  platform.modeled_seconds(run_t.stats));
  std::printf("power-method iterations: baseline %d, ExtDict %d\n",
              baseline.total_iterations(), transformed.total_iterations());
  return 0;
}
