// Platform awareness, the paper's thesis, made visible: the SAME dataset
// with the SAME error budget tunes to DIFFERENT dictionary sizes on
// different platforms, because the (FLOPs vs. words) trade-off shifts with
// the interconnect. Prior transforms (RCSS/oASIS/RankMap) return one fixed
// answer regardless of the platform.

#include <cstdio>

#include "core/extdict.hpp"
#include "core/tuner.hpp"
#include "data/hyperspectral.hpp"
#include "util/table.hpp"

int main() {
  using namespace extdict;

  // A hyperspectral scene with N >> M — the regime where the FLOP term
  // (M·L + alpha(L)·N)/P and the communication term min(M, L)·R_bf pull the
  // dictionary size in opposite directions.
  data::HyperspectralConfig scene;
  scene.bands = 60;
  scene.num_pixels = 2000;
  scene.num_endmembers = 12;
  scene.mix_size = 3;
  scene.num_regions = 20;
  scene.noise_stddev = 0.004;
  const la::Matrix a = data::make_hyperspectral(scene).a;
  std::printf("dataset: %td x %td, error budget 5%%\n\n", a.rows(), a.cols());

  // Profile alpha(L) once — the tuner then re-ranks the same profile for
  // each platform (this is how cheap platform re-targeting is). The grid
  // straddles M so the communication term min(M, L) is in play.
  core::TunerConfig config;
  config.profile.l_grid = {15, 22, 32, 46, 60, 90, 140, 220};
  config.profile.tolerance = 0.05;
  config.profile.seed = 1;

  util::Table table({"platform", "P", "R_bf(time)", "L*", "modeled cost",
                     "alpha(L*)"});
  for (const auto& platform : dist::paper_platforms()) {
    const auto result = core::tune(a, platform, config);
    table.add_row({platform.name,
                   std::to_string(platform.topology.total()),
                   util::fmt(platform.r_time_bf(), 3),
                   std::to_string(result.best_l),
                   util::fmt(result.best_cost, 4),
                   util::fmt(result.profile.at(result.best_l).alpha_mean, 3)});
  }
  std::printf("%s\n", table.str().c_str());

  // An extreme platform: words are nearly free -> the tuner is liberated to
  // use very redundant dictionaries (sparser C, more comm).
  auto fat_pipe = dist::PlatformSpec::idataplex({8, 8});
  fat_pipe.name = "fat-interconnect-8x8";
  fat_pipe.inter_words_per_second *= 100;
  const auto fat = core::tune(a, fat_pipe, config);

  // And a starved one: every word hurts -> small dictionaries win.
  auto thin_pipe = dist::PlatformSpec::idataplex({8, 8});
  thin_pipe.name = "starved-interconnect-8x8";
  thin_pipe.inter_words_per_second /= 100;
  const auto thin = core::tune(a, thin_pipe, config);

  std::printf("fat interconnect:     L* = %td\n", fat.best_l);
  std::printf("starved interconnect: L* = %td\n", thin.best_l);
  std::printf("\n(same data, same error — the platform decides the projection)\n");
  return 0;
}
