// extdict_cli — run the ExtDict pipeline on your own data.
//
// Usage:
//   extdict_cli <matrix.mtx> [--eps 0.1] [--nodes 2] [--cores 8]
//               [--objective time|energy|memory] [--eigen K]
//               [--save-dict D.mtx] [--save-coeffs C.mtx]
//   extdict_cli serve [--dict D.mtx] [--requests N] [--clients T]
//               [--batch B] [--workers W] [--queue Q]
//               [--policy block|reject|shed] [--delay-us D]
//               [--eps E] [--max-atoms K]
//               [--telemetry FILE] [--telemetry-period-ms N]
//
// The input is a Matrix Market *array* file (dense, real, general); columns
// are the data signals. The tool normalises columns, tunes the Extensible
// Dictionary for the requested platform, reports the transform statistics
// and the paper's cost-model numbers, optionally runs a top-K PCA through
// the transformed Gram operator, and can save D (dense) and C (sparse
// coordinate) back to Matrix Market files.
//
// `serve` spins up the micro-batched sparse-coding server (src/serve/) on a
// dictionary — loaded from --dict, or a bundled synthetic one — drives it
// with a closed-loop client swarm, and prints the request accounting,
// batching profile, latency percentiles, and gauge peaks. --telemetry FILE
// streams periodic registry snapshots as JSONL (see docs/OBSERVABILITY.md;
// inspect with tools/analyze_telemetry.py).
//
// With no argument it demonstrates itself on a bundled synthetic dataset.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/extdict.hpp"
#include "data/datasets.hpp"
#include "la/io.hpp"
#include "la/random.hpp"
#include "serve/server.hpp"
#include "solvers/power_method.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace extdict;

struct Options {
  std::string input;
  double eps = 0.1;
  la::Index nodes = 1;
  la::Index cores = 4;
  core::Objective objective = core::Objective::kTime;
  int eigenpairs = 0;
  std::string save_dict;
  std::string save_coeffs;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <matrix.mtx> [--eps E] [--nodes N] [--cores C]\n"
               "          [--objective time|energy|memory] [--eigen K]\n"
               "          [--save-dict D.mtx] [--save-coeffs C.mtx]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  int i = 1;
  if (i < argc && argv[i][0] != '-') opt.input = argv[i++];
  for (; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--eps")) {
      opt.eps = std::atof(need_value("--eps"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes = std::atol(need_value("--nodes"));
    } else if (!std::strcmp(argv[i], "--cores")) {
      opt.cores = std::atol(need_value("--cores"));
    } else if (!std::strcmp(argv[i], "--eigen")) {
      opt.eigenpairs = std::atoi(need_value("--eigen"));
    } else if (!std::strcmp(argv[i], "--objective")) {
      const std::string v = need_value("--objective");
      if (v == "time") {
        opt.objective = core::Objective::kTime;
      } else if (v == "energy") {
        opt.objective = core::Objective::kEnergy;
      } else if (v == "memory") {
        opt.objective = core::Objective::kMemory;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--save-dict")) {
      opt.save_dict = need_value("--save-dict");
    } else if (!std::strcmp(argv[i], "--save-coeffs")) {
      opt.save_coeffs = need_value("--save-coeffs");
    } else {
      usage(argv[0]);
    }
  }
  if (opt.eps <= 0 || opt.eps >= 1 || opt.nodes < 1 || opt.cores < 1) {
    usage(argv[0]);
  }
  return opt;
}

// --- serve subcommand -------------------------------------------------------

struct ServeOptions {
  std::string dict_path;
  int requests = 2000;
  int clients = 2;
  la::Index batch = 32;
  int workers = 2;
  std::size_t queue = 256;
  serve::BackpressurePolicy policy = serve::BackpressurePolicy::kBlock;
  std::uint64_t delay_us = 200;
  double eps = 0.0;
  la::Index max_atoms = 8;
  std::string telemetry_path;  // empty: snapshotter off
  std::int64_t telemetry_period_ms = 100;
};

[[noreturn]] void serve_usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s serve [--dict D.mtx] [--requests N] [--clients T]\n"
               "          [--batch B] [--workers W] [--queue Q]\n"
               "          [--policy block|reject|shed] [--delay-us D]\n"
               "          [--eps E] [--max-atoms K]\n"
               "          [--telemetry FILE] [--telemetry-period-ms N]\n",
               argv0);
  std::exit(2);
}

ServeOptions parse_serve(int argc, char** argv) {
  ServeOptions opt;
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        serve_usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--dict")) {
      opt.dict_path = need_value("--dict");
    } else if (!std::strcmp(argv[i], "--requests")) {
      opt.requests = std::atoi(need_value("--requests"));
    } else if (!std::strcmp(argv[i], "--clients")) {
      opt.clients = std::atoi(need_value("--clients"));
    } else if (!std::strcmp(argv[i], "--batch")) {
      opt.batch = std::atol(need_value("--batch"));
    } else if (!std::strcmp(argv[i], "--workers")) {
      opt.workers = std::atoi(need_value("--workers"));
    } else if (!std::strcmp(argv[i], "--queue")) {
      opt.queue = static_cast<std::size_t>(std::atol(need_value("--queue")));
    } else if (!std::strcmp(argv[i], "--delay-us")) {
      opt.delay_us = static_cast<std::uint64_t>(std::atol(need_value("--delay-us")));
    } else if (!std::strcmp(argv[i], "--eps")) {
      opt.eps = std::atof(need_value("--eps"));
    } else if (!std::strcmp(argv[i], "--max-atoms")) {
      opt.max_atoms = std::atol(need_value("--max-atoms"));
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      opt.telemetry_path = need_value("--telemetry");
    } else if (!std::strcmp(argv[i], "--telemetry-period-ms")) {
      opt.telemetry_period_ms = std::atol(need_value("--telemetry-period-ms"));
    } else if (!std::strcmp(argv[i], "--policy")) {
      const std::string v = need_value("--policy");
      if (v == "block") {
        opt.policy = serve::BackpressurePolicy::kBlock;
      } else if (v == "reject") {
        opt.policy = serve::BackpressurePolicy::kReject;
      } else if (v == "shed") {
        opt.policy = serve::BackpressurePolicy::kShedOldest;
      } else {
        serve_usage(argv[0]);
      }
    } else {
      serve_usage(argv[0]);
    }
  }
  if (opt.requests < 1 || opt.clients < 1 || opt.eps < 0) {
    serve_usage(argv[0]);
  }
  return opt;
}

const char* policy_label(serve::BackpressurePolicy policy) {
  switch (policy) {
    case serve::BackpressurePolicy::kBlock: return "block";
    case serve::BackpressurePolicy::kReject: return "reject";
    case serve::BackpressurePolicy::kShedOldest: return "shed_oldest";
  }
  return "?";
}

int serve_main(int argc, char** argv) {
  const ServeOptions opt = parse_serve(argc, argv);

  la::Matrix dict;
  if (opt.dict_path.empty()) {
    std::printf("no --dict given — serving a synthetic 48 x 96 dictionary\n");
    la::Rng rng(17);
    dict = rng.gaussian_matrix(48, 96, true);
  } else {
    dict = la::read_matrix_market_dense(opt.dict_path);
    dict.normalize_columns();
    std::printf("loaded dictionary %s: %td x %td\n", opt.dict_path.c_str(),
                dict.rows(), dict.cols());
  }
  const la::Index m = dict.rows();

  // The serve layer's gauges/histograms live in the process-global registry;
  // enable it so counters flow too, and start the periodic JSONL exporter
  // before the swarm so the ramp-up is captured.
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.set_enabled(true);
  std::unique_ptr<util::TelemetrySnapshotter> snapshotter;
  if (!opt.telemetry_path.empty()) {
    snapshotter = std::make_unique<util::TelemetrySnapshotter>(
        metrics, opt.telemetry_path,
        util::TelemetryOptions{.period_ms = opt.telemetry_period_ms});
    if (!snapshotter->ok()) {
      std::fprintf(stderr, "error: cannot open telemetry file %s\n",
                   opt.telemetry_path.c_str());
      return 1;
    }
  }

  serve::ExtDictServer server(
      std::move(dict),
      {.max_batch = opt.batch,
       .max_delay_us = opt.delay_us,
       .workers = opt.workers,
       .queue_capacity = opt.queue,
       .backpressure = opt.policy,
       .omp = {.tolerance = opt.eps, .max_atoms = opt.max_atoms}});

  // Closed-loop client swarm: each client owns a slice of the request budget
  // and submits its next signal as soon as the previous future resolves.
  // Latencies land in (thread-safe) histograms; failures are counted, not
  // fatal — under reject/shed they are the expected backpressure signal.
  util::Histogram latency;
  util::Histogram queue_wait;
  std::atomic<std::uint64_t> served{0}, backpressured{0}, errored{0};
  util::Timer wall;
  std::vector<std::thread> clients;
  for (int c = 0; c < opt.clients; ++c) {
    const int share = opt.requests / opt.clients +
                      (c < opt.requests % opt.clients ? 1 : 0);
    clients.emplace_back([&, c, share] {
      la::Rng rng(100u + static_cast<unsigned>(c));
      la::Vector signal(m);
      for (int i = 0; i < share; ++i) {
        rng.fill_gaussian(signal);
        try {
          const serve::EncodeResult result = server.submit(signal).get();
          latency.record(result.queue_seconds + result.encode_seconds);
          queue_wait.record(result.queue_seconds);
          served.fetch_add(1);
        } catch (const serve::ServeError&) {
          backpressured.fetch_add(1);
        } catch (const std::exception&) {
          errored.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  const double seconds = wall.elapsed_ms() / 1e3;
  server.stop();
  if (snapshotter) {
    snapshotter->stop();  // one final drained sample lands before the table
    std::printf("telemetry: %llu snapshots -> %s\n",
                static_cast<unsigned long long>(snapshotter->snapshots_written()),
                opt.telemetry_path.c_str());
  }

  const serve::ServerStats stats = server.stats();
  util::Table table({"quantity", "value"});
  table.add_row({"policy / max_batch / workers",
                 std::string(policy_label(opt.policy)) + " / " +
                     std::to_string(opt.batch) + " / " +
                     std::to_string(opt.workers)});
  table.add_row({"requests submitted", std::to_string(stats.submitted)});
  table.add_row({"served", std::to_string(stats.served)});
  table.add_row({"rejected / shed", std::to_string(stats.rejected) + " / " +
                                        std::to_string(stats.shed)});
  table.add_row({"encode failures", std::to_string(stats.encode_failed)});
  table.add_row({"batches", std::to_string(stats.batches)});
  table.add_row(
      {"columns per batch (mean / max)",
       util::fmt(stats.batches
                     ? static_cast<double>(stats.columns_encoded) /
                           static_cast<double>(stats.batches)
                     : 0.0,
                 2) +
           " / " + std::to_string(stats.max_batch_columns)});
  const double rps =
      seconds > 0 ? static_cast<double>(stats.served) / seconds : 0.0;
  table.add_row({"throughput",
                 util::fmt_count(static_cast<std::uint64_t>(rps)) +
                     " requests/s"});
  if (latency.count() > 0) {
    table.add_row({"latency p50 / p99",
                   util::fmt(latency.quantile(0.5) * 1e6, 4) + " / " +
                       util::fmt(latency.quantile(0.99) * 1e6, 4) + " us"});
    table.add_row({"queue wait p50 / p99",
                   util::fmt(queue_wait.quantile(0.5) * 1e6, 4) + " / " +
                       util::fmt(queue_wait.quantile(0.99) * 1e6, 4) + " us"});
  }
  table.add_row({"peak queue depth",
                 std::to_string(metrics.gauge("serve.queue.depth").peak())});
  table.add_row({"peak in-flight",
                 std::to_string(metrics.gauge("serve.inflight").peak())});
  std::printf("%s", table.str().c_str());

  const std::uint64_t resolved = served.load() + backpressured.load() + errored.load();
  if (resolved != stats.submitted) {
    std::fprintf(stderr, "error: %llu futures unaccounted for\n",
                 static_cast<unsigned long long>(stats.submitted - resolved));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "serve")) {
    return serve_main(argc, argv);
  }
  const Options opt = parse(argc, argv);

  la::Matrix a;
  if (opt.input.empty()) {
    std::printf("no input given — using the bundled synthetic Salina scene\n");
    a = data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  } else {
    util::Timer t;
    a = la::read_matrix_market_dense(opt.input);
    std::printf("loaded %s: %td x %td in %s\n", opt.input.c_str(), a.rows(),
                a.cols(), util::format_duration_ms(t.elapsed_ms()).c_str());
  }
  a.normalize_columns();

  const auto platform =
      dist::PlatformSpec::idataplex({.nodes = opt.nodes, .cores_per_node = opt.cores});
  std::printf("platform: %s (P = %td, R_bf = %.2f)\n", platform.name.c_str(),
              platform.topology.total(), platform.r_time_bf());

  core::ExtDict::Options options;
  options.tolerance = opt.eps;
  options.objective = opt.objective;
  const la::Index n = a.cols();
  options.subset_sizes = {n / 10 + 1, n / 4 + 1, n};
  const auto engine = core::ExtDict::preprocess(a, platform, options);

  const auto& t = engine.transform();
  util::Table table({"quantity", "value"});
  table.add_row({"tuned dictionary size L*", std::to_string(engine.tuned_l())});
  table.add_row({"transformation error", util::fmt(t.transformation_error, 4)});
  table.add_row({"alpha (nnz per column)", util::fmt(t.alpha(), 4)});
  table.add_row({"transform storage",
                 util::fmt(static_cast<double>(t.memory_words()) * 8 / (1 << 20), 4) +
                     " MB"});
  table.add_row({"original storage",
                 util::fmt(static_cast<double>(a.memory_words()) * 8 / (1 << 20), 4) +
                     " MB"});
  table.add_row({"preprocessing time",
                 util::format_duration_ms(engine.preprocessing_ms())});
  const auto cost = engine.update_cost();
  table.add_row({"modeled update cost (Eq.2)", util::fmt(cost.time_cost, 5)});
  table.add_row({"update comm words", util::fmt(cost.comm_words, 5)});
  std::printf("%s", table.str().c_str());

  if (opt.eigenpairs > 0) {
    solvers::PowerConfig power;
    power.num_eigenpairs = opt.eigenpairs;
    util::Timer pt;
    const auto spectrum = solvers::power_method(engine.gram_operator(), power);
    std::printf("top-%d eigenvalues of A^T A (via (DC)^T DC, %s):\n",
                opt.eigenpairs, util::format_duration_ms(pt.elapsed_ms()).c_str());
    for (std::size_t i = 0; i < spectrum.eigenvalues.size(); ++i) {
      std::printf("  lambda_%zu = %.8g\n", i + 1, spectrum.eigenvalues[i]);
    }
  }

  if (!opt.save_dict.empty()) {
    la::write_matrix_market(t.dictionary, opt.save_dict);
    std::printf("wrote dictionary to %s\n", opt.save_dict.c_str());
  }
  if (!opt.save_coeffs.empty()) {
    la::write_matrix_market(t.coefficients, opt.save_coeffs);
    std::printf("wrote coefficients to %s\n", opt.save_coeffs.c_str());
  }
  return 0;
}
