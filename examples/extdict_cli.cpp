// extdict_cli — run the ExtDict pipeline on your own data.
//
// Usage:
//   extdict_cli <matrix.mtx> [--eps 0.1] [--nodes 2] [--cores 8]
//               [--objective time|energy|memory] [--eigen K]
//               [--save-dict D.mtx] [--save-coeffs C.mtx]
//
// The input is a Matrix Market *array* file (dense, real, general); columns
// are the data signals. The tool normalises columns, tunes the Extensible
// Dictionary for the requested platform, reports the transform statistics
// and the paper's cost-model numbers, optionally runs a top-K PCA through
// the transformed Gram operator, and can save D (dense) and C (sparse
// coordinate) back to Matrix Market files.
//
// With no argument it demonstrates itself on a bundled synthetic dataset.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "core/extdict.hpp"
#include "data/datasets.hpp"
#include "la/io.hpp"
#include "solvers/power_method.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace extdict;

struct Options {
  std::string input;
  double eps = 0.1;
  la::Index nodes = 1;
  la::Index cores = 4;
  core::Objective objective = core::Objective::kTime;
  int eigenpairs = 0;
  std::string save_dict;
  std::string save_coeffs;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <matrix.mtx> [--eps E] [--nodes N] [--cores C]\n"
               "          [--objective time|energy|memory] [--eigen K]\n"
               "          [--save-dict D.mtx] [--save-coeffs C.mtx]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  int i = 1;
  if (i < argc && argv[i][0] != '-') opt.input = argv[i++];
  for (; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--eps")) {
      opt.eps = std::atof(need_value("--eps"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      opt.nodes = std::atol(need_value("--nodes"));
    } else if (!std::strcmp(argv[i], "--cores")) {
      opt.cores = std::atol(need_value("--cores"));
    } else if (!std::strcmp(argv[i], "--eigen")) {
      opt.eigenpairs = std::atoi(need_value("--eigen"));
    } else if (!std::strcmp(argv[i], "--objective")) {
      const std::string v = need_value("--objective");
      if (v == "time") {
        opt.objective = core::Objective::kTime;
      } else if (v == "energy") {
        opt.objective = core::Objective::kEnergy;
      } else if (v == "memory") {
        opt.objective = core::Objective::kMemory;
      } else {
        usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--save-dict")) {
      opt.save_dict = need_value("--save-dict");
    } else if (!std::strcmp(argv[i], "--save-coeffs")) {
      opt.save_coeffs = need_value("--save-coeffs");
    } else {
      usage(argv[0]);
    }
  }
  if (opt.eps <= 0 || opt.eps >= 1 || opt.nodes < 1 || opt.cores < 1) {
    usage(argv[0]);
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  la::Matrix a;
  if (opt.input.empty()) {
    std::printf("no input given — using the bundled synthetic Salina scene\n");
    a = data::make_dataset(data::DatasetId::kSalina, data::Scale::kTest);
  } else {
    util::Timer t;
    a = la::read_matrix_market_dense(opt.input);
    std::printf("loaded %s: %td x %td in %s\n", opt.input.c_str(), a.rows(),
                a.cols(), util::format_duration_ms(t.elapsed_ms()).c_str());
  }
  a.normalize_columns();

  const auto platform =
      dist::PlatformSpec::idataplex({.nodes = opt.nodes, .cores_per_node = opt.cores});
  std::printf("platform: %s (P = %td, R_bf = %.2f)\n", platform.name.c_str(),
              platform.topology.total(), platform.r_time_bf());

  core::ExtDict::Options options;
  options.tolerance = opt.eps;
  options.objective = opt.objective;
  const la::Index n = a.cols();
  options.subset_sizes = {n / 10 + 1, n / 4 + 1, n};
  const auto engine = core::ExtDict::preprocess(a, platform, options);

  const auto& t = engine.transform();
  util::Table table({"quantity", "value"});
  table.add_row({"tuned dictionary size L*", std::to_string(engine.tuned_l())});
  table.add_row({"transformation error", util::fmt(t.transformation_error, 4)});
  table.add_row({"alpha (nnz per column)", util::fmt(t.alpha(), 4)});
  table.add_row({"transform storage",
                 util::fmt(static_cast<double>(t.memory_words()) * 8 / (1 << 20), 4) +
                     " MB"});
  table.add_row({"original storage",
                 util::fmt(static_cast<double>(a.memory_words()) * 8 / (1 << 20), 4) +
                     " MB"});
  table.add_row({"preprocessing time",
                 util::format_duration_ms(engine.preprocessing_ms())});
  const auto cost = engine.update_cost();
  table.add_row({"modeled update cost (Eq.2)", util::fmt(cost.time_cost, 5)});
  table.add_row({"update comm words", util::fmt(cost.comm_words, 5)});
  std::printf("%s", table.str().c_str());

  if (opt.eigenpairs > 0) {
    solvers::PowerConfig power;
    power.num_eigenpairs = opt.eigenpairs;
    util::Timer pt;
    const auto spectrum = solvers::power_method(engine.gram_operator(), power);
    std::printf("top-%d eigenvalues of A^T A (via (DC)^T DC, %s):\n",
                opt.eigenpairs, util::format_duration_ms(pt.elapsed_ms()).c_str());
    for (std::size_t i = 0; i < spectrum.eigenvalues.size(); ++i) {
      std::printf("  lambda_%zu = %.8g\n", i + 1, spectrum.eigenvalues[i]);
    }
  }

  if (!opt.save_dict.empty()) {
    la::write_matrix_market(t.dictionary, opt.save_dict);
    std::printf("wrote dictionary to %s\n", opt.save_dict.c_str());
  }
  if (!opt.save_coeffs.empty()) {
    la::write_matrix_market(t.coefficients, opt.save_coeffs);
    std::printf("wrote coefficients to %s\n", opt.save_coeffs.c_str());
  }
  return 0;
}
