// Evolving data (§V-E, Fig. 3): extend an existing ExD projection with new
// columns without re-running the transform on the whole dataset.
//
// Scenario: a stream first delivers more data from the *known* structure
// (the dictionary absorbs it for free), then data from a *new* structure
// (the dictionary is extended and the old coefficients are zero-padded).

#include <cstdio>

#include "core/extdict.hpp"
#include "data/subspace.hpp"
#include "la/blas.hpp"

using namespace extdict;

namespace {

data::SubspaceData make_initial() {
  data::SubspaceModelConfig config;
  config.ambient_dim = 60;
  config.num_columns = 500;
  config.num_subspaces = 5;
  config.subspace_dim = 5;
  config.seed = 42;
  return data::make_union_of_subspaces(config);
}

la::Matrix familiar_batch(const data::SubspaceData& base, la::Index count) {
  la::Rng rng(7);
  la::Matrix out(base.a.rows(), count);
  la::Vector coeff(static_cast<std::size_t>(base.bases[0].cols()));
  for (la::Index j = 0; j < count; ++j) {
    const auto& basis = base.bases[static_cast<std::size_t>(
        rng.uniform_index(0, static_cast<la::Index>(base.bases.size()) - 1))];
    rng.fill_gaussian(coeff);
    auto col = out.col(j);
    std::fill(col.begin(), col.end(), la::Real{0});
    la::gemv(1, basis, coeff, 0, col);
  }
  out.normalize_columns();
  return out;
}

la::Matrix novel_batch(la::Index rows, la::Index count) {
  data::SubspaceModelConfig config;
  config.ambient_dim = rows;
  config.num_columns = count;
  config.num_subspaces = 3;
  config.subspace_dim = 5;
  config.seed = 4242;  // fresh subspaces the dictionary has never seen
  return data::make_union_of_subspaces(config).a;
}

}  // namespace

int main() {
  const auto base = make_initial();
  const auto platform = dist::PlatformSpec::idataplex({.nodes = 1, .cores_per_node = 4});

  core::ExtDict::Options options;
  options.tolerance = 0.08;
  core::ExtDict engine = core::ExtDict::preprocess(base.a, platform, options);
  std::printf("initial: N=%td, L=%td, error=%.4f\n",
              engine.transform().coefficients.cols(), engine.tuned_l(),
              engine.transform().transformation_error);

  // Batch 1: familiar structure — re-coding only, D untouched.
  const auto report1 = engine.extend(familiar_batch(base, 80));
  std::printf("batch 1 (familiar): %td columns, %td failed, dictionary %s "
              "(L now %td)\n",
              report1.new_columns, report1.failed_columns,
              report1.dictionary_extended ? "EXTENDED" : "unchanged",
              engine.tuned_l());

  // Batch 2: novel structure — ExD runs on the failing columns only and the
  // old C is zero-padded to the enlarged atom space.
  const auto report2 = engine.extend(novel_batch(base.a.rows(), 100));
  std::printf("batch 2 (novel): %td columns, %td failed, +%td atoms, "
              "dictionary %s (L now %td)\n",
              report2.new_columns, report2.failed_columns, report2.new_atoms,
              report2.dictionary_extended ? "EXTENDED" : "unchanged",
              engine.tuned_l());

  std::printf("final transform: %td columns, alpha=%.2f nnz/col\n",
              engine.transform().coefficients.cols(),
              engine.transform().alpha());
  return 0;
}
