// Sparse subspace clustering with ExD codes: the union-of-subspaces
// structure the paper exploits for sparsity (§V-B) doubles as a clustering
// signal — columns connect to the atoms (themselves dataset columns) that
// code them, and the connected components recover the subspaces. No N x N
// affinity matrix is ever formed.

#include <cstdio>

#include "core/exd.hpp"
#include "core/subspace_clustering.hpp"
#include "data/subspace.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace extdict;

  data::SubspaceModelConfig config;
  config.ambient_dim = 100;
  config.num_columns = 1000;
  config.num_subspaces = 6;
  config.subspace_dim = 5;
  config.noise_stddev = 0.001;
  config.seed = 99;
  const auto data = data::make_union_of_subspaces(config);
  std::printf("dataset: %td x %td, %td hidden subspaces of dimension %td\n",
              data.a.rows(), data.a.cols(), config.num_subspaces,
              config.subspace_dim);

  util::Table table({"L", "alpha", "clusters found", "Rand index vs truth",
                     "time"});
  for (const la::Index l : {60l, 120l, 240l, 480l}) {
    util::Timer timer;
    core::ExdConfig exd;
    exd.dictionary_size = l;
    exd.tolerance = 0.03;
    exd.seed = 3;
    const auto t = core::exd_transform(data.a, exd);
    const auto clusters = core::cluster_by_codes(t);
    table.add_row({std::to_string(l), util::fmt(t.alpha(), 3),
                   std::to_string(clusters.num_clusters),
                   util::fmt(core::rand_index(clusters.labels, data.membership), 4),
                   util::format_duration_ms(timer.elapsed_ms())});
  }
  std::printf("%s", table.str().c_str());
  std::printf("(clusters beyond %td are isolated self-coded atoms; the Rand "
              "index shows the partitions agree)\n",
              config.num_subspaces);
  return 0;
}
