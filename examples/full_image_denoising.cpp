// Full-image denoising with the patch pipeline: train an ExD-transformed
// patch dictionary on clean scenes, then restore a noisy image end to end
// (sliding window, per-patch LASSO, overlap blending). Writes before/after
// PGMs next to the binary.

#include <cstdio>

#include "apps/patch_pipeline.hpp"
#include "util/timer.hpp"

int main() {
  using namespace extdict;

  // Training data: patches from two clean scenes.
  la::Rng rng(21);
  const data::Image scene_a = data::make_smooth_scene(128, 128, rng);
  const data::Image scene_b = data::make_smooth_scene(128, 128, rng);
  la::Matrix train = data::extract_patches(scene_a, 8, 600, rng);
  train.append_columns(data::extract_patches(scene_b, 8, 600, rng));
  std::printf("training set: %td patches of 8x8\n", train.cols());

  apps::PatchPipelineConfig config;
  config.patch = 8;
  config.stride = 4;
  config.tolerance = 0.1;
  config.lambda = 3e-4;

  util::Timer train_timer;
  const apps::PatchDenoiser denoiser(
      train, dist::PlatformSpec::idataplex({.nodes = 1, .cores_per_node = 4}),
      config);
  std::printf("trained in %s: L* = %td, transform error %.4f\n",
              util::format_duration_ms(train_timer.elapsed_ms()).c_str(),
              denoiser.dictionary_size(), denoiser.transform_error());

  // Test image: a fresh scene, corrupted.
  la::Rng rng2(22);
  const data::Image clean = data::make_smooth_scene(96, 96, rng2);
  data::Image noisy = clean;
  data::add_gaussian_noise(noisy, 0.06, rng2);

  util::Timer restore_timer;
  const data::Image restored = denoiser.denoise(noisy);
  std::printf("restored 96x96 image in %s\n",
              util::format_duration_ms(restore_timer.elapsed_ms()).c_str());

  std::printf("PSNR: noisy %.2f dB -> restored %.2f dB\n",
              data::psnr_db(clean.pixels, noisy.pixels),
              data::psnr_db(clean.pixels, restored.pixels));

  data::write_pgm(clean, "full_denoise_clean.pgm");
  data::write_pgm(noisy, "full_denoise_noisy.pgm");
  data::write_pgm(restored, "full_denoise_restored.pgm");
  std::printf("wrote full_denoise_{clean,noisy,restored}.pgm\n");
  return 0;
}
