// SVM classification through ExtDict (the paper's third target-algorithm
// family, §II-A): a least-squares SVM trained on the Gram matrix of the
// data columns, with every Gram product running on the ExD-transformed
// representation. The task: tell cancer-cell phenotype A from phenotype B
// using the synthetic morphology dataset.

#include <cstdio>

#include "core/extdict.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "solvers/svm.hpp"
#include "util/timer.hpp"

int main() {
  using namespace extdict;

  // Two phenotypes = two offset clusters with low-dimensional within-class
  // variation (affine subspaces — linearly separable, unlike subspaces
  // through the origin, yet still the dense-correlated structure ExD
  // sparsifies).
  const la::Index m = 120, per_class = 300, variation_dim = 6;
  la::Rng gen(77);
  la::Matrix centers = gen.gaussian_matrix(m, 2, true);
  la::Matrix variation = gen.gaussian_matrix(m, variation_dim, true);
  la::Matrix a(m, 2 * per_class);
  la::Vector labels(static_cast<std::size_t>(2 * per_class));
  la::Vector coeff0(static_cast<std::size_t>(variation_dim));
  for (la::Index j = 0; j < 2 * per_class; ++j) {
    const la::Index phenotype = j < per_class ? 0 : 1;
    auto col = a.col(j);
    std::copy(centers.col(phenotype).begin(), centers.col(phenotype).end(),
              col.begin());
    gen.fill_gaussian(coeff0, 0, 0.25);
    la::gemv(1, variation, coeff0, 1, col);
    for (auto& v : col) v += gen.gaussian(0, 0.01);
    labels[static_cast<std::size_t>(j)] = phenotype == 0 ? 1.0 : -1.0;
  }
  a.normalize_columns();
  struct {
    la::Matrix a;
  } cells{std::move(a)};
  std::printf("dataset: %td x %td, two phenotypes\n", cells.a.rows(),
              cells.a.cols());

  const auto platform = dist::PlatformSpec::idataplex({.nodes = 1, .cores_per_node = 4});
  core::ExtDict::Options options;
  options.tolerance = 0.05;
  const auto engine = core::ExtDict::preprocess(cells.a, platform, options);
  std::printf("transform: L* = %td, error %.4f, alpha %.2f\n", engine.tuned_l(),
              engine.transform().transformation_error,
              engine.transform().alpha());

  // Train on the transformed Gram and on the dense Gram; compare.
  util::Timer t_fast;
  const solvers::LsSvm svm_fast(engine.gram_operator(), labels, {});
  const double ms_fast = t_fast.elapsed_ms();

  core::DenseGramOperator dense(cells.a);
  util::Timer t_dense;
  const solvers::LsSvm svm_dense(dense, labels, {});
  const double ms_dense = t_dense.elapsed_ms();

  std::printf("training accuracy: transformed %.4f (%.1f ms, %d CG iters), "
              "dense %.4f (%.1f ms, %d CG iters)\n",
              solvers::training_accuracy(svm_fast, labels), ms_fast,
              svm_fast.cg_iterations(),
              solvers::training_accuracy(svm_dense, labels), ms_dense,
              svm_dense.cg_iterations());

  // Classify fresh signals drawn from each phenotype.
  la::Rng rng(5);
  la::Vector coeff(static_cast<std::size_t>(variation_dim));
  int correct = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    const int phenotype = trial % 2;
    la::Vector signal(static_cast<std::size_t>(m));
    std::copy(centers.col(phenotype).begin(), centers.col(phenotype).end(),
              signal.begin());
    rng.fill_gaussian(coeff, 0, 0.25);
    la::gemv(1, variation, coeff, 1, signal);
    const la::Real norm = la::nrm2(signal);
    la::scal(1 / norm, signal);
    const int predicted = svm_fast.classify(signal);
    if (predicted == (phenotype == 0 ? 1 : -1)) ++correct;
  }
  std::printf("held-out accuracy over %d fresh signals: %.4f\n", trials,
              static_cast<double>(correct) / trials);
  return 0;
}
