// Image denoising with LASSO over an ExtDict-transformed light-field
// dataset (the paper's first learning application, §VIII-A/D).
//
// A noisy observation y is reconstructed as A·x̂ where
//   x̂ = argmin_x  1/2 ||A x − y||² + λ ||x||₁
// and every gradient step runs on the transformed Gram (DC)ᵀDC instead of
// AᵀA. The example writes before/after PGM images next to the binary and
// reports PSNR.

#include <cstdio>

#include "core/extdict.hpp"
#include "data/image.hpp"
#include "data/lightfield.hpp"
#include "solvers/lasso.hpp"

int main() {
  using namespace extdict;

  // Dataset of clean light-field patch signals.
  data::LightFieldConfig lf_config;
  lf_config.scene_size = 96;
  lf_config.views = 3;
  lf_config.patch = 8;
  lf_config.num_patches = 600;
  lf_config.noise_stddev = 0;  // the *dictionary data* is clean
  const auto lf = data::make_light_field(lf_config);
  std::printf("light-field dataset: %td x %td\n", lf.a.rows(), lf.a.cols());

  // Platform-aware preprocessing.
  const auto platform = dist::PlatformSpec::idataplex({.nodes = 1, .cores_per_node = 4});
  core::ExtDict::Options options;
  options.tolerance = 0.1;
  const auto engine = core::ExtDict::preprocess(lf.a, platform, options);
  std::printf("L* = %td, transform error %.4f\n", engine.tuned_l(),
              engine.transform().transformation_error);

  // Observation: a held-out clean signal corrupted by sensor noise.
  la::Rng rng(99);
  la::Vector clean(lf.a.col(0).begin(), lf.a.col(0).end());
  la::Vector noisy = clean;
  for (auto& v : noisy) v += rng.gaussian(0, 0.03);
  std::printf("input PSNR: %.2f dB\n", data::psnr_db(clean, noisy));

  // Solve LASSO on the transformed Gram.
  solvers::LassoConfig lasso;
  lasso.lambda = 5e-4;
  lasso.max_iterations = 600;
  const auto result = solvers::lasso_solve(engine.gram_operator(), noisy, lasso);

  la::Vector denoised(clean.size());
  engine.gram_operator().apply_forward(result.x, denoised);
  std::printf("output PSNR: %.2f dB (%d LASSO iterations)\n",
              data::psnr_db(clean, denoised), result.iterations);

  // Render the central 8x8 view of the three signals for eyeballing.
  auto to_image = [&](const la::Vector& signal, const char* path) {
    data::Image img(8, 8);
    const la::Index center_block = (lf_config.views * lf_config.views / 2) * 64;
    for (la::Index i = 0; i < 64; ++i) {
      // Patch values were column-normalised; rescale into [0,1] roughly.
      img.pixels[static_cast<std::size_t>(i)] =
          signal[static_cast<std::size_t>(center_block + i)] * 8.0;
    }
    data::write_pgm(img, path);
  };
  to_image(clean, "denoise_clean.pgm");
  to_image(noisy, "denoise_noisy.pgm");
  to_image(denoised, "denoise_output.pgm");
  std::printf("wrote denoise_{clean,noisy,output}.pgm\n");
  return 0;
}
