// Light-field super-resolution (the paper's second LASSO application):
// an observation captured by a 3x3 camera subset (576 rows) is expressed
// in terms of a dataset A restricted to those rows; applying the recovered
// sparse code to the full 5x5-view dataset A_lf lifts the observation to
// all 1600 rows.

#include <cstdio>

#include "core/extdict.hpp"
#include "data/image.hpp"
#include "data/lightfield.hpp"
#include "la/blas.hpp"
#include "solvers/lasso.hpp"

int main() {
  using namespace extdict;

  // Full 5x5-view dataset A_lf (1600 rows per column).
  data::LightFieldConfig lf_config;
  lf_config.scene_size = 96;
  lf_config.views = 5;
  lf_config.patch = 8;
  lf_config.num_patches = 500;
  lf_config.noise_stddev = 0;
  const auto lf = data::make_light_field(lf_config);
  std::printf("A_lf: %td x %td\n", lf.a.rows(), lf.a.cols());

  // Low-resolution observation space: the central 3x3 camera subset.
  const auto subset = lf.view_subset_rows(3);
  const la::Matrix a_low = lf.a.select_rows({subset.data(), subset.size()});
  std::printf("A (3x3 subset): %td x %td\n", a_low.rows(), a_low.cols());

  // Ground truth: a held-out high-resolution signal (first column);
  // the observation y is its 3x3-subset restriction.
  la::Vector truth_high(lf.a.col(0).begin(), lf.a.col(0).end());
  la::Vector y(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    y[i] = truth_high[static_cast<std::size_t>(subset[i])];
  }

  // ExtDict preprocessing of the low-resolution dataset.
  const auto platform = dist::PlatformSpec::idataplex({.nodes = 1, .cores_per_node = 4});
  core::ExtDict::Options options;
  options.tolerance = 0.1;
  const auto engine = core::ExtDict::preprocess(a_low, platform, options);
  std::printf("L* = %td, transform error %.4f\n", engine.tuned_l(),
              engine.transform().transformation_error);

  // Solve the LASSO in the low-resolution space.
  solvers::LassoConfig lasso;
  lasso.lambda = 5e-4;
  lasso.max_iterations = 600;
  const auto result = solvers::lasso_solve(engine.gram_operator(), y, lasso);
  std::printf("LASSO: %d iterations, objective %.6g\n", result.iterations,
              result.final_objective);

  // Lift: A_lf x̂ gives the 1600-row high-resolution reconstruction.
  la::Vector lifted(static_cast<std::size_t>(lf.a.rows()));
  la::gemv(1, lf.a, result.x, 0, lifted);

  std::printf("super-resolved PSNR vs. ground truth: %.2f dB\n",
              data::psnr_db(truth_high, lifted));
  // Sanity anchor: how well does the sparse code explain the observation?
  la::Vector y_hat(y.size());
  engine.gram_operator().apply_forward(result.x, y_hat);
  std::printf("low-resolution fit PSNR: %.2f dB\n", data::psnr_db(y, y_hat));
  return 0;
}
