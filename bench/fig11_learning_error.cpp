// Fig. 11: effect of the transformation error eps on the LEARNING error of
// the denoising and super-resolution applications — reconstruction error
// ||y - y_hat|| / ||y|| and PSNR versus eps.
//
// Paper shape: the learning error degrades only mildly as eps grows (the
// applications tolerate coarse projections), with output PSNR ~29.4 dB for
// denoising (input ~20 dB SNR) and ~24.7 dB for super-resolution.

#include "bench_common.hpp"
#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "data/image.hpp"
#include "data/lightfield.hpp"
#include "la/blas.hpp"
#include "solvers/lasso.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 11",
                "Learning error vs transformation error (denoising & "
                "super-resolution)");

  data::LightFieldConfig lf_config;
  lf_config.scene_size = 160;
  lf_config.views = 5;
  lf_config.patch = 8;
  lf_config.num_patches = 1001;
  lf_config.disparity = 2.5;
  lf_config.view_gain_jitter = 0.05;
  lf_config.noise_stddev = 0.0003;
  lf_config.seed = 32;
  const auto lf = data::make_light_field(lf_config);
  la::Rng rng(13);

  // Hold out column 0 as ground truth; the dataset is the rest.
  std::vector<la::Index> rest(static_cast<std::size_t>(lf.a.cols()) - 1);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    rest[i] = static_cast<la::Index>(i + 1);
  }
  const la::Matrix a_rest = lf.a.select_columns(rest);
  const la::Vector truth(lf.a.col(0).begin(), lf.a.col(0).end());

  const double epsilons[] = {0.01, 0.05, 0.1, 0.2};

  // --- Denoising -----------------------------------------------------------
  {
    std::printf("\nImage denoising (Light Field %td x %td)\n", a_rest.rows(),
                a_rest.cols());
    // ~20 dB input SNR on the unit-norm signal, like the paper's setup.
    const la::Vector& clean = truth;
    la::Vector noisy = clean;
    for (auto& v : noisy) v += rng.gaussian(0, 0.0025);

    util::Table table({"eps", "reconstruction err ||y-yhat||/||y||",
                       "output PSNR (dB)", "LASSO iters"});
    for (const double eps : epsilons) {
      core::ExdConfig exd;
      exd.dictionary_size = 300;
      exd.tolerance = eps;
      exd.seed = 11;
      const auto t = core::exd_transform(a_rest, exd);
      const core::TransformedGramOperator op(t.dictionary, t.coefficients);
      solvers::LassoConfig lasso;
      lasso.lambda = 5e-4;
      lasso.max_iterations = 400;
      const auto r = solvers::lasso_solve(op, noisy, lasso);
      la::Vector rec(clean.size());
      op.apply_forward(r.x, rec);
      la::Vector diff = rec;
      for (std::size_t i = 0; i < diff.size(); ++i) diff[i] -= clean[i];
      table.add_row({util::fmt(eps, 3),
                     util::fmt(la::nrm2(diff) / la::nrm2(clean), 4),
                     util::fmt(data::psnr_db(clean, rec), 4),
                     std::to_string(r.iterations)});
    }
    std::printf("input PSNR of the noisy observation: %.2f dB\n",
                data::psnr_db(clean, noisy));
    std::printf("%s", table.str().c_str());
  }

  // --- Super-resolution ----------------------------------------------------
  {
    const auto subset = lf.view_subset_rows(3);
    const la::Matrix a_low = a_rest.select_rows({subset.data(), subset.size()});
    std::printf("\nImage super-resolution (A %td x %td -> lift to %td rows)\n",
                a_low.rows(), a_low.cols(), a_rest.rows());
    la::Vector y(subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i) {
      y[i] = truth[static_cast<std::size_t>(subset[i])];
    }

    util::Table table({"eps", "high-res err", "high-res PSNR (dB)",
                       "LASSO iters"});
    for (const double eps : epsilons) {
      core::ExdConfig exd;
      exd.dictionary_size = 300;
      exd.tolerance = eps;
      exd.seed = 11;
      const auto t = core::exd_transform(a_low, exd);
      const core::TransformedGramOperator op(t.dictionary, t.coefficients);
      solvers::LassoConfig lasso;
      lasso.lambda = 5e-4;
      lasso.max_iterations = 400;
      const auto r = solvers::lasso_solve(op, y, lasso);
      la::Vector lifted(static_cast<std::size_t>(a_rest.rows()));
      la::gemv(1, a_rest, r.x, 0, lifted);
      la::Vector diff = lifted;
      for (std::size_t i = 0; i < diff.size(); ++i) diff[i] -= truth[i];
      table.add_row({util::fmt(eps, 3),
                     util::fmt(la::nrm2(diff) / la::nrm2(truth), 4),
                     util::fmt(data::psnr_db(truth, lifted), 4),
                     std::to_string(r.iterations)});
    }
    std::printf("%s", table.str().c_str());
  }

  bench::note(
      "expected: error grows only mildly with eps — large eps still gives "
      "usable reconstructions (the paper's accuracy/efficiency trade)");
  return 0;
}
