// Extension: the paper quantifies an energy model (Eq. 3) but reports no
// energy measurements ("the runtime and memory analysis directly translate
// to energy as well", §VIII-A). This bench completes that claim: modelled
// energy of one Gram update for ExtDict vs the original data on every
// platform, from the same exact counters as the runtime figures, using the
// per-FLOP and per-word energy constants of the platform model.

#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"
#include "core/tuner.hpp"

int main() {
  using namespace extdict;
  bench::banner("Extra (Eq. 3)", "Modelled energy per Gram update (eps = 0.1)");

  const auto sets = bench::BenchDatasets::load();
  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());
    la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);

    util::Table table({"platform", "L* (energy)", "original (uJ)",
                       "ExtDict (uJ)", "improvement"});
    for (const auto& platform : dist::paper_platforms()) {
      core::TunerConfig tc;
      tc.profile.l_grid = entry.spec.l_grid;
      tc.profile.tolerance = 0.1;
      tc.profile.seed = 3;
      tc.objective = core::Objective::kEnergy;
      const la::Index n = a.cols();
      tc.subset_sizes = {n / 10, n / 4, n};
      const auto tuned = core::tune(a, platform, tc);
      core::ExdConfig exd;
      exd.dictionary_size = tuned.best_l;
      exd.tolerance = 0.1;
      exd.seed = 3;
      const auto ext = core::exd_transform(a, exd);

      const dist::Cluster cluster(platform.topology);
      const auto run_t = core::dist_gram_apply(cluster, ext.dictionary,
                                               ext.coefficients, x0, 1);
      const auto run_o = core::dist_gram_apply_original(cluster, a, x0, 1);
      const double joules_t = platform.modeled_joules(run_t.stats);
      const double joules_o = platform.modeled_joules(run_o.stats);
      table.add_row({platform.topology.name(), std::to_string(tuned.best_l),
                     util::fmt(joules_o * 1e6, 4), util::fmt(joules_t * 1e6, 4),
                     util::fmt(joules_o / joules_t, 3) + "x"});
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note(
      "energy is total work (not critical path), so the improvement tracks "
      "the FLOP/word savings even where latency hides them in runtime");
  return 0;
}
