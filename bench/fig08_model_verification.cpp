// Fig. 8: verification of the performance model. Top row of the paper's
// figure = the predicted cost of one (DC)^T DC x update (Eq. 2, in FLOP
// equivalents); bottom row = the measured per-iteration runtime on each
// platform. The prediction must track the measurement's *trend* across L
// and across platforms.
//
// Here "measured" is the platform-modelled time of the actual SPMD run
// (exact counters from the emulated cluster), and we additionally report
// the host wall-clock of the same computation as a secondary measurement.

#include <cmath>

#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 8", "Predicted (Eq. 2) vs measured per-update cost");

  const auto sets = bench::BenchDatasets::load();

  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());
    la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);

    std::vector<std::string> header = {"platform"};
    for (const la::Index l : entry.spec.l_grid) {
      header.push_back("L=" + std::to_string(l));
    }
    util::Table predicted(header);
    util::Table measured(header);

    // One transform per L (platform independent), reused across platforms.
    std::vector<core::ExdResult> transforms;
    for (const la::Index l : entry.spec.l_grid) {
      core::ExdConfig exd;
      exd.dictionary_size = l;
      exd.tolerance = 0.1;
      exd.seed = 8;
      transforms.push_back(core::exd_transform(a, exd));
    }

    // Rank correlation bookkeeping: does the predicted ordering of L match
    // the measured ordering on every platform?
    int order_checks = 0, order_agreements = 0;

    for (const auto& platform : dist::paper_platforms()) {
      std::vector<std::string> prow = {platform.topology.name()};
      std::vector<std::string> mrow = {platform.topology.name()};
      std::vector<double> pvals, mvals;
      const dist::Cluster cluster(platform.topology);
      for (const auto& t : transforms) {
        const auto cost = core::transformed_update_cost(
            a.rows(), t.dictionary.cols(), t.coefficients.nnz(), a.cols(),
            platform.topology.total(), platform);
        const auto run =
            core::dist_gram_apply(cluster, t.dictionary, t.coefficients, x0, 1);
        const double ms = platform.modeled_seconds(run.stats) * 1e3;
        prow.push_back(util::fmt(cost.time_cost, 4));
        mrow.push_back(util::fmt(ms, 4));
        pvals.push_back(cost.time_cost);
        mvals.push_back(ms);
      }
      predicted.add_row(std::move(prow));
      measured.add_row(std::move(mrow));
      for (std::size_t i = 0; i < pvals.size(); ++i) {
        for (std::size_t j = i + 1; j < pvals.size(); ++j) {
          ++order_checks;
          if ((pvals[i] < pvals[j]) == (mvals[i] < mvals[j])) ++order_agreements;
        }
      }
    }
    std::printf("predicted cost (Eq. 2, FLOP equivalents):\n%s",
                predicted.str().c_str());
    std::printf("measured per-update time (ms, modelled from exact counters):\n%s",
                measured.str().c_str());
    std::printf("trend agreement (pairwise orderings): %d / %d (%.0f%%)\n",
                order_agreements, order_checks,
                100.0 * order_agreements / std::max(order_checks, 1));
  }
  bench::note("expected: >= ~90% pairwise-trend agreement on every dataset");
  return 0;
}
