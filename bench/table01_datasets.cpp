// Table I: datasets used for the applications, paper originals vs. the
// synthetic stand-ins this reproduction generates (see DESIGN.md §2 for the
// substitution rationale).

#include "bench_common.hpp"

int main() {
  using namespace extdict;
  bench::banner("Table I", "Datasets used for various applications");

  util::Table table({"dataset", "application", "paper dims", "paper size",
                     "our dims", "our size"});
  for (const auto& spec : data::all_datasets()) {
    const la::Matrix a = data::make_dataset(spec.id, data::Scale::kBench);
    table.add_row({spec.name, spec.application, spec.paper_dims, spec.paper_size,
                   std::to_string(a.rows()) + " x " + std::to_string(a.cols()),
                   bench::mb(a.memory_words())});
  }
  std::printf("%s", table.str().c_str());
  bench::note(
      "our datasets are seeded synthetic generators reproducing the "
      "union-of-subspace structure of the originals (DESIGN.md table 2)");
  return 0;
}
