// Fig. 4: density alpha(L) (left axis) and transformation error (right
// axis) as a function of the number of sampled columns L, with variance
// bars over repeated random dictionary draws, on the Salina-like dataset.
//
// Paper shape to reproduce: below L_min the error criterion cannot be met;
// past L_min, alpha(L) decreases monotonically (larger dictionaries give
// sparser codes) and the dictionary-draw variance is small (<~4%).

#include "bench_common.hpp"
#include "core/alpha_profile.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 4",
                "alpha(L) and transformation error vs. L (Salina, eps = 0.1)");

  const la::Matrix a = data::make_dataset(data::DatasetId::kSalina,
                                          data::Scale::kBench);
  std::printf("dataset: %td x %td\n", a.rows(), a.cols());

  core::AlphaProfileConfig config;
  config.l_grid = {5, 10, 20, 35, 60, 100, 160, 260, 400, 640, 1000};
  config.tolerance = 0.1;
  config.trials = 5;  // the paper uses 10 draws; 5 keeps the bench snappy
  config.seed = 4;

  util::Timer timer;
  const core::AlphaProfile profile = core::estimate_alpha_profile(a, config);

  util::Table table({"L", "alpha(L) mean", "alpha stddev", "dispersion %",
                     "error ||A-DC||_F/||A||_F", "meets eps?"});
  for (const auto& p : profile.points) {
    table.add_row({std::to_string(p.l), util::fmt(p.alpha_mean, 4),
                   util::fmt(p.alpha_stddev, 3),
                   util::fmt(p.alpha_mean > 0
                                 ? 100.0 * p.alpha_stddev / p.alpha_mean
                                 : 0.0,
                             3),
                   util::fmt(p.error_mean, 4), p.feasible ? "yes" : "NO"});
  }
  std::printf("%s", table.str().c_str());
  std::printf("L_min (smallest feasible grid point): %td\n",
              profile.min_feasible_l());
  std::printf("profiled in %s\n",
              util::format_duration_ms(timer.elapsed_ms()).c_str());
  bench::note(
      "expected shape: error drops below eps at L_min, alpha decreases for "
      "L > L_min, dispersion across draws stays small");
  return 0;
}
