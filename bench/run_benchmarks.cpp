// Model-verification benchmark driver: closes the model-vs-measurement loop
// and writes it down as machine-checkable JSON.
//
//   run_benchmarks [--quick] [--out DIR] [--trace FILE]
//
// Emits two schema-stable files (validated by tools/validate_bench_json.py,
// run in CI's bench-smoke job):
//
//   BENCH_gram_model.json  — the Fig. 8-style sweep: every GramStrategy of
//     Algorithm 2 plus the original AᵀA baseline, across datasets and
//     platforms, with measured {FLOPs, words, time} next to the modeled
//     Eq. (2) quantities. For every Eq. (2)-covered case the metered
//     per-iteration update FLOPs must equal 2 × the model's multiply-add
//     pairs EXACTLY — any drift fails the process (non-zero exit), which is
//     precisely the net that would have caught the 2× work undercount.
//
//   BENCH_solvers.json — LASSO and power-method runs (serial + distributed)
//     with their metered counters and a full metrics-registry snapshot.
//
// --quick runs test-scale datasets on the two smallest platforms (seconds,
// CI-friendly); the default runs bench scale across all paper platforms.
//
// --trace FILE additionally records a per-rank event timeline (solver sweep
// plus a dedicated P=4 Alg. 2 window over every Gram strategy) and exports
// it as Chrome trace-event JSON — open it at ui.perfetto.dev or feed it to
// tools/analyze_trace.py. Any dropped event fails the run: the default ring
// capacity must hold the whole window.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"
#include "data/datasets.hpp"
#include "dist/platform.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "solvers/lasso.hpp"
#include "solvers/power_method.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace {

using namespace extdict;
using la::Index;
using la::Real;
using util::Json;

struct Options {
  bool quick = false;
  std::string out_dir = ".";
  std::string trace_path;  // empty: tracing off
};

struct Transform {
  Index l = 0;
  core::ExdResult exd;
};

struct Dataset {
  std::string name;
  la::Matrix a;
  std::vector<Transform> transforms;
};

const char* strategy_name(core::GramStrategy s) {
  switch (s) {
    case core::GramStrategy::kRootDictionary: return "root_dictionary";
    case core::GramStrategy::kReplicatedDictionary: return "replicated_dictionary";
    case core::GramStrategy::kPartitionedDictionary: return "partitioned_dictionary";
    case core::GramStrategy::kAuto: return "auto";
  }
  return "?";
}

// The L sweep: spec grid (every other point) at bench scale, a three-point
// {M/2, M, 2M}-shaped grid clamped to N at test scale so the sweep crosses
// the L = M dispatch boundary even on tiny instances.
std::vector<Index> l_grid(const data::DatasetSpec& spec, const la::Matrix& a,
                          bool quick) {
  std::vector<Index> grid;
  if (quick) {
    for (const Index candidate :
         {std::max<Index>(8, a.rows() / 2), std::min(a.rows(), a.cols() / 2),
          std::min(2 * a.rows(), 2 * a.cols() / 3)}) {
      if (candidate > 0 && candidate <= a.cols()) grid.push_back(candidate);
    }
  } else {
    for (std::size_t i = 0; i < spec.l_grid.size(); i += 2) {
      if (spec.l_grid[i] <= a.cols()) grid.push_back(spec.l_grid[i]);
    }
  }
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());
  return grid;
}

std::vector<Dataset> load_datasets(bool quick) {
  std::vector<Dataset> sets;
  for (const auto& spec : data::all_datasets()) {
    Dataset set;
    set.name = spec.name;
    util::Timer t;
    set.a = data::make_dataset(spec.id,
                               quick ? data::Scale::kTest : data::Scale::kBench);
    std::printf("[data] %s: %td x %td (%.1f ms)\n", spec.name.c_str(),
                set.a.rows(), set.a.cols(), t.elapsed_ms());
    for (const Index l : l_grid(spec, set.a, quick)) {
      core::ExdConfig exd;
      exd.dictionary_size = l;
      exd.tolerance = 0.1;
      exd.seed = 8;
      set.transforms.push_back({l, core::exd_transform(set.a, exd)});
    }
    sets.push_back(std::move(set));
  }
  return sets;
}

std::vector<dist::PlatformSpec> platforms(bool quick) {
  auto all = dist::paper_platforms();
  if (quick) all.resize(2);  // 1x1 and 1x4
  return all;
}

Json measured_json(const core::DistGramResult& run, double wall_seconds,
                   const dist::PlatformSpec& platform) {
  Json j = Json::object();
  j["update_flops_per_iteration"] = run.update_flops_per_iteration();
  j["total_flops"] = run.stats.total_flops();
  j["words_total"] = run.stats.total_words();
  j["critical_path_words"] = run.stats.max_rank_words();
  j["peak_memory_words"] = run.stats.max_peak_memory_words();
  j["wall_seconds"] = wall_seconds;
  j["modeled_seconds_from_counters"] = platform.modeled_seconds(run.stats);
  return j;
}

Json modeled_json(const core::UpdateCost& cost, Index p) {
  Json j = Json::object();
  const double work_pairs = cost.flops_per_proc * static_cast<double>(p);
  j["work_pairs"] = work_pairs;               // Eq. (2) work term, total
  j["flops"] = 2.0 * work_pairs;              // 2 FLOPs per multiply-add pair
  j["comm_words"] = cost.comm_words;
  j["time_cost_flop_equiv"] = cost.time_cost;
  j["energy_cost_flop_equiv"] = cost.energy_cost;
  j["memory_words_per_proc"] = cost.memory_words_per_proc;
  return j;
}

// Re-runs the quickest workload with the registry switched on and off and
// reports the delta; documents that the instrumentation is below the noise
// floor of the phases it brackets.
Json instrumentation_overhead(const Dataset& set) {
  const auto& t = set.transforms.front();
  const dist::Cluster cluster(dist::Topology{1, 4});
  const la::Vector x0(static_cast<std::size_t>(set.a.cols()), Real{1});
  constexpr int kReps = 5;
  constexpr int kIters = 4;

  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  const auto time_reps = [&] {
    std::vector<double> seconds;
    for (int r = 0; r < kReps; ++r) {
      util::Timer timer;
      (void)core::dist_gram_apply(cluster, t.exd.dictionary, t.exd.coefficients,
                                  x0, kIters,
                                  core::GramStrategy::kPartitionedDictionary);
      seconds.push_back(timer.elapsed_seconds());
    }
    std::sort(seconds.begin(), seconds.end());
    return seconds[seconds.size() / 2];  // median
  };

  const double enabled_s = time_reps();
  metrics.set_enabled(false);
  const double disabled_s = time_reps();
  metrics.set_enabled(true);

  Json j = Json::object();
  j["workload"] = set.name + " partitioned dist_gram_apply, " +
                  std::to_string(kIters) + " iterations, P=4, median of " +
                  std::to_string(kReps);
  j["metrics_enabled_seconds"] = enabled_s;
  j["metrics_disabled_seconds"] = disabled_s;
  j["delta_pct"] =
      disabled_s > 0 ? 100.0 * (enabled_s - disabled_s) / disabled_s : 0.0;
  j["note"] =
      "span timers + atomic counters; the delta sits inside run-to-run "
      "scheduler noise for every metered phase (compare the spread of "
      "wall_seconds across cases)";
  return j;
}

int write_file(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.dump(2) << '\n';
  std::printf("[out] %s\n", path.c_str());
  return 0;
}

int run_gram_model(const Options& options, const std::vector<Dataset>& sets) {
  Json doc = Json::object();
  doc["schema_version"] = 1;
  doc["benchmark"] = "bench/run_benchmarks gram-model sweep";
  doc["mode"] = options.quick ? "quick" : "full";
  doc["units"] =
      "work_pairs: multiply-add pairs (the Eq. 2 work term); flops: 2 per "
      "pair, matching dist::CostCounters; time costs in FLOP-equivalents";

  Json cases = Json::array();
  int total_cases = 0, covered_cases = 0, exact_matches = 0;
  constexpr int kIters = 2;

  constexpr core::GramStrategy kStrategies[] = {
      core::GramStrategy::kPartitionedDictionary,
      core::GramStrategy::kRootDictionary,
      core::GramStrategy::kReplicatedDictionary,
  };

  for (const auto& set : sets) {
    const Index m = set.a.rows();
    const Index n = set.a.cols();
    const la::Vector x0(static_cast<std::size_t>(n), Real{1});
    for (const auto& platform : platforms(options.quick)) {
      const Index p = platform.topology.total();
      const dist::Cluster cluster(platform.topology);
      for (const auto& t : set.transforms) {
        const std::uint64_t nnz = t.exd.coefficients.nnz();
        const core::UpdateCost cost =
            core::transformed_update_cost(m, t.l, nnz, n, p, platform);
        for (const core::GramStrategy strategy : kStrategies) {
          util::Timer timer;
          const auto run = core::dist_gram_apply(
              cluster, t.exd.dictionary, t.exd.coefficients, x0, kIters, strategy);
          const double wall = timer.elapsed_seconds();

          // Eq. (2) covers every strategy whose total update work is
          // 2·(M·L + nnz) pairs; the replicated dictionary redoes the dense
          // chain on every rank, so it is covered only at P = 1.
          const bool covered =
              strategy != core::GramStrategy::kReplicatedDictionary || p == 1;
          // work = 2·(M·L + nnz) multiply-add pairs; 2 FLOPs per pair.
          const auto model_flops = static_cast<std::uint64_t>(
              2.0 * cost.flops_per_proc * static_cast<double>(p));
          const std::uint64_t redundancy_flops =
              4 * nnz + 4 * static_cast<std::uint64_t>(m) *
                            static_cast<std::uint64_t>(t.l) *
                            static_cast<std::uint64_t>(p);
          const std::uint64_t expected =
              covered ? model_flops : redundancy_flops;
          const bool exact = run.update_flops_per_iteration() == expected;

          Json c = Json::object();
          c["dataset"] = set.name;
          c["platform"] = platform.name;
          c["strategy"] = strategy_name(strategy);
          c["m"] = m;
          c["l"] = t.l;
          c["n"] = n;
          c["nnz"] = nnz;
          c["p"] = p;
          c["iterations"] = kIters;
          c["measured"] = measured_json(run, wall, platform);
          c["modeled"] = modeled_json(cost, p);
          Json check = Json::object();
          check["covered_by_eq2"] = covered;
          check["expected_flops_per_iteration"] = expected;
          check["flops_match_exact"] = exact;
          c["model_check"] = std::move(check);
          cases.push_back(std::move(c));

          ++total_cases;
          if (covered) ++covered_cases;
          if (exact) ++exact_matches;
        }

        // The original AᵀA baseline on the same dataset/platform.
        {
          util::Timer timer;
          const auto run = core::dist_gram_apply_original(cluster, set.a, x0, kIters);
          const double wall = timer.elapsed_seconds();
          const core::UpdateCost orig = core::original_update_cost(m, n, p, platform);
          const auto model_flops = static_cast<std::uint64_t>(
              2.0 * orig.flops_per_proc * static_cast<double>(p));
          const bool exact = run.update_flops_per_iteration() == model_flops;

          Json c = Json::object();
          c["dataset"] = set.name;
          c["platform"] = platform.name;
          c["strategy"] = "original_ata";
          c["m"] = m;
          c["l"] = 0;
          c["n"] = n;
          c["nnz"] = static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n);
          c["p"] = p;
          c["iterations"] = kIters;
          c["measured"] = measured_json(run, wall, platform);
          c["modeled"] = modeled_json(orig, p);
          Json check = Json::object();
          check["covered_by_eq2"] = true;
          check["expected_flops_per_iteration"] = model_flops;
          check["flops_match_exact"] = exact;
          c["model_check"] = std::move(check);
          cases.push_back(std::move(c));

          ++total_cases;
          ++covered_cases;
          if (exact) ++exact_matches;
        }
      }
    }
  }

  doc["cases"] = std::move(cases);
  Json summary = Json::object();
  summary["cases"] = total_cases;
  summary["covered_by_eq2"] = covered_cases;
  summary["exact_flop_matches"] = exact_matches;
  summary["all_cases_match"] = exact_matches == total_cases;
  doc["summary"] = std::move(summary);
  doc["instrumentation_overhead"] = instrumentation_overhead(sets.front());

  const int rc = write_file(options.out_dir + "/BENCH_gram_model.json", doc);
  std::printf("gram model: %d/%d cases match their closed form exactly "
              "(%d Eq. 2-covered)\n",
              exact_matches, total_cases, covered_cases);
  if (exact_matches != total_cases) {
    std::fprintf(stderr,
                 "error: measured update FLOPs diverged from the cost model\n");
    return 1;
  }
  return rc;
}

int run_solvers(const Options& options, const std::vector<Dataset>& sets) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();
  metrics.reset();

  Json doc = Json::object();
  doc["schema_version"] = 1;
  doc["benchmark"] = "bench/run_benchmarks solver sweep";
  doc["mode"] = options.quick ? "quick" : "full";
  Json cases = Json::array();

  const auto& set = sets.front();
  const auto& t = set.transforms.front();
  const Index m = set.a.rows();
  const Index n = set.a.cols();

  {  // Serial LASSO through the transformed operator.
    const core::TransformedGramOperator op(t.exd.dictionary, t.exd.coefficients);
    la::Vector y(static_cast<std::size_t>(m), Real{1});
    solvers::LassoConfig config;
    config.lambda = 0.05;
    config.max_iterations = options.quick ? 60 : 200;
    util::Timer timer;
    const auto r = solvers::lasso_solve(op, y, config);
    Json c = Json::object();
    c["solver"] = "lasso_serial_transformed";
    c["dataset"] = set.name;
    c["l"] = t.l;
    Json measured = Json::object();
    measured["iterations"] = r.iterations;
    measured["converged"] = r.converged;
    measured["final_objective"] = r.final_objective;
    measured["wall_seconds"] = timer.elapsed_seconds();
    measured["gram_flops_counter"] = metrics.value("gram_operator.transformed.flops");
    c["measured"] = std::move(measured);
    cases.push_back(std::move(c));
  }

  {  // Distributed LASSO on the 1-node multi-core platform.
    const auto platform = platforms(options.quick).back();
    const dist::Cluster cluster(platform.topology);
    la::Vector y(static_cast<std::size_t>(m), Real{1});
    solvers::LassoConfig config;
    config.lambda = 0.05;
    config.max_iterations = options.quick ? 60 : 200;
    util::Timer timer;
    const auto r = solvers::lasso_solve_distributed(
        cluster, t.exd.dictionary, t.exd.coefficients, y, config);
    Json c = Json::object();
    c["solver"] = "lasso_distributed";
    c["dataset"] = set.name;
    c["l"] = t.l;
    c["platform"] = platform.name;
    Json measured = Json::object();
    measured["iterations"] = r.iterations;
    measured["converged"] = r.converged;
    measured["final_objective"] = r.final_objective;
    measured["wall_seconds"] = timer.elapsed_seconds();
    measured["total_flops"] = r.stats.total_flops();
    measured["words_total"] = r.stats.total_words();
    measured["critical_path_words"] = r.stats.max_rank_words();
    c["measured"] = std::move(measured);
    const core::UpdateCost cost = core::transformed_update_cost(
        m, t.l, t.exd.coefficients.nnz(), n, platform.topology.total(), platform);
    c["modeled_per_update"] = modeled_json(cost, platform.topology.total());
    cases.push_back(std::move(c));
  }

  {  // Distributed power method (PCA), auto strategy dispatch.
    const auto platform = platforms(options.quick).back();
    const dist::Cluster cluster(platform.topology);
    solvers::PowerConfig config;
    config.num_eigenpairs = 2;
    config.max_iterations = options.quick ? 30 : 100;
    util::Timer timer;
    const auto r = solvers::power_method_distributed(
        cluster, t.exd.dictionary, t.exd.coefficients, config);
    Json c = Json::object();
    c["solver"] = "power_method_distributed";
    c["dataset"] = set.name;
    c["l"] = t.l;
    c["platform"] = platform.name;
    Json measured = Json::object();
    Json eigs = Json::array();
    for (const Real v : r.eigenvalues) eigs.push_back(v);
    measured["eigenvalues"] = std::move(eigs);
    Json iters = Json::array();
    for (const int it : r.iterations) iters.push_back(it);
    measured["iterations"] = std::move(iters);
    measured["wall_seconds"] = timer.elapsed_seconds();
    measured["total_flops"] = r.stats.total_flops();
    measured["words_total"] = r.stats.total_words();
    c["measured"] = std::move(measured);
    cases.push_back(std::move(c));
  }

  // Batch-OMP FLOP model check, same contract as the gram-model sweep: the
  // per-encode meter in BatchOmp::encode and the closed form in
  // encode_flops are independent derivations of the same count and must
  // agree EXACTLY on every signal. This net catches the k³-for-solves
  // overcount class of bug (each triangular solve pair is 2s², not k²).
  bool omp_model_ok = true;
  {
    const struct { Index m, l, max_atoms; Real tolerance; } omp_cases[] = {
        {32, 64, 8, 0.0},    // atom-budget stop
        {64, 128, 0, 0.1},   // tolerance stop, deeper runs
    };
    la::Rng rng(29);
    const int signals = options.quick ? 64 : 512;
    for (const auto& spec : omp_cases) {
      const la::Matrix dict = rng.gaussian_matrix(spec.m, spec.l, true);
      const sparsecoding::BatchOmp coder(
          dict, {.tolerance = spec.tolerance, .max_atoms = spec.max_atoms});
      la::Vector signal(static_cast<std::size_t>(spec.m));
      std::uint64_t metered_total = 0, modeled_total = 0;
      int exact = 0, iterations_max = 0;
      util::Timer timer;
      for (int i = 0; i < signals; ++i) {
        rng.fill_gaussian(signal);
        const auto code = coder.encode(signal);
        metered_total += code.flops;
        modeled_total += coder.encode_flops(code.iterations);
        if (code.flops == coder.encode_flops(code.iterations)) ++exact;
        iterations_max = std::max(iterations_max, code.iterations);
      }
      const bool all_exact = exact == signals;
      omp_model_ok = omp_model_ok && all_exact;

      Json c = Json::object();
      c["solver"] = "batch_omp_flop_model";
      c["dataset"] = "synthetic_gaussian";
      c["m"] = spec.m;
      c["l"] = spec.l;
      c["max_atoms"] = static_cast<std::uint64_t>(spec.max_atoms);
      c["tolerance"] = spec.tolerance;
      c["signals"] = signals;
      Json measured = Json::object();
      measured["metered_flops_total"] = metered_total;
      measured["iterations_max"] = iterations_max;
      measured["wall_seconds"] = timer.elapsed_seconds();
      c["measured"] = std::move(measured);
      Json check = Json::object();
      check["modeled_flops_total"] = modeled_total;
      check["exact_matches"] = exact;
      check["flops_match_exact"] = all_exact;
      c["model_check"] = std::move(check);
      cases.push_back(std::move(c));
      std::printf("batch-omp flop model: %d/%d signals exact (m=%td l=%td)\n",
                  exact, signals, spec.m, spec.l);
    }
  }

  doc["cases"] = std::move(cases);
  // The registry as the solvers left it — counters and phase spans together.
  doc["metrics_snapshot"] = metrics.to_json();
  const int rc = write_file(options.out_dir + "/BENCH_solvers.json", doc);
  if (!omp_model_ok) {
    std::fprintf(stderr,
                 "error: metered Batch-OMP FLOPs diverged from "
                 "encode_flops()\n");
    return 1;
  }
  return rc;
}

// Dedicated trace window: one P=4 Alg. 2 run per Gram strategy plus the
// original AᵀA baseline, on the smallest dataset/transform. Runs with the
// recorder already enabled (main switches it on before run_solvers), attaches
// the model parameters analyze_trace.py compares against, and exports.
// Dropped events fail the run — the acceptance bar is a complete timeline at
// the default ring capacity.
int run_trace(const Options& options, const std::vector<Dataset>& sets) {
  util::TraceRecorder& trace = util::TraceRecorder::global();
  const auto& set = sets.front();
  const auto& t = set.transforms.front();
  const Index m = set.a.rows();
  const Index n = set.a.cols();
  const std::uint64_t nnz = t.exd.coefficients.nnz();
  // The 1x4 paper platform — P=4 emulated ranks regardless of mode.
  const auto platform = platforms(true).back();
  const Index p = platform.topology.total();
  const dist::Cluster cluster(platform.topology);
  const la::Vector x0(static_cast<std::size_t>(n), Real{1});
  constexpr int kIters = 3;

  constexpr core::GramStrategy kStrategies[] = {
      core::GramStrategy::kRootDictionary,
      core::GramStrategy::kReplicatedDictionary,
      core::GramStrategy::kPartitionedDictionary,
  };
  for (const core::GramStrategy strategy : kStrategies) {
    (void)core::dist_gram_apply(cluster, t.exd.dictionary, t.exd.coefficients,
                                x0, kIters, strategy);
  }
  (void)core::dist_gram_apply_original(cluster, set.a, x0, kIters);
  trace.set_enabled(false);

  Json model = Json::object();
  model["dataset"] = set.name;
  model["m"] = m;
  model["l"] = t.l;
  model["n"] = n;
  model["nnz"] = nnz;
  model["p"] = p;
  model["iterations"] = kIters;
  model["min_m_l"] = std::min(m, t.l);  // the Eq. (2) per-phase word term
  trace.set_metadata("model", std::move(model));
  trace.set_metadata("mode", options.quick ? "quick" : "full");

  const int rc = write_file(options.trace_path, trace.to_chrome_json());
  const std::uint64_t dropped = trace.dropped_events();
  std::printf("trace: %llu events recorded, %llu dropped\n",
              static_cast<unsigned long long>(trace.recorded_events()),
              static_cast<unsigned long long>(dropped));
  if (dropped != 0) {
    std::fprintf(stderr,
                 "error: trace dropped %llu events — raise the ring capacity "
                 "or shrink the traced window\n",
                 static_cast<unsigned long long>(dropped));
    return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: run_benchmarks [--quick] [--out DIR] "
                   "[--trace FILE]\n");
      return 2;
    }
  }

  std::printf("run_benchmarks (%s mode)\n", options.quick ? "quick" : "full");
  const std::vector<Dataset> sets = load_datasets(options.quick);

  // The gram sweep runs untraced: its 70+ cases would swamp the ring buffers
  // (and the timeline). Tracing covers the solver sweep and the dedicated
  // Alg. 2 window below.
  const int gram_rc = run_gram_model(options, sets);
  if (!options.trace_path.empty()) {
    util::TraceRecorder::global().set_enabled(true);
  }
  const int solver_rc = run_solvers(options, sets);
  const int trace_rc =
      options.trace_path.empty() ? 0 : run_trace(options, sets);
  if (gram_rc != 0) return gram_rc;
  if (solver_rc != 0) return solver_rc;
  return trace_rc;
}
