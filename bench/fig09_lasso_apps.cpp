// Fig. 9: total runtime of the image denoising and super-resolution
// applications — ExtDict's gradient descent on the transformed data vs.
// distributed mini-batch SGD (Adagrad, batch 64) on the original data —
// across the four platform configurations.
//
// Total time = iterations x per-iteration modelled time (the iteration
// count is platform independent; the per-iteration cost is measured on
// each platform with exact counters). SGD iterations = iterations until it
// reaches the gradient-descent objective.
//
// Paper shape: ExtDict wins on every platform (up to 23.7x denoising, 11.9x
// super-resolution); SGD's per-iteration communication is smaller (batch <
// min(M, L)) but it needs far more iterations.

#include <algorithm>

#include "baselines/sgd.hpp"
#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/extdict.hpp"
#include "data/lightfield.hpp"
#include "solvers/lasso.hpp"

namespace {

using namespace extdict;

struct App {
  std::string name;
  la::Matrix a;           // dataset the LASSO runs against
  la::Vector y;           // observation
  la::Index batch_rows;   // SGD batch (scaled to the paper's row fraction)
};

void run_app(const App& app) {
  std::printf("\n%s: A is %td x %td\n", app.name.c_str(), app.a.rows(),
              app.a.cols());

  // ExtDict pipeline: preprocess once (platform-tuned per platform below,
  // using eps = 0.1 like the paper), solve by full-gradient descent.
  const double eps = 0.1;

  // Iteration counts are platform independent: compute them once with a
  // reference transform / the original data.
  core::ExtDict::Options options;
  options.tolerance = eps;
  options.seed = 9;
  const auto ref_engine =
      core::ExtDict::preprocess(app.a, dist::PlatformSpec::idataplex({1, 1}), options);

  solvers::LassoConfig lasso;
  lasso.lambda = 1e-3;
  lasso.max_iterations = 3000;
  lasso.tolerance = 1e-7;
  lasso.objective_every = 5;
  const auto gd = solvers::lasso_solve(ref_engine.gram_operator(), app.y, lasso);

  // Iterations-to-target for BOTH methods: the target is the converged GD
  // objective (+2%), and GD itself is credited with the first trace point
  // that reaches it (not the stopping-rule tail). SGD's small-batch
  // stochastic steps typically plateau above this — the paper's
  // "sub-optimality ... and slow convergence".
  const double target = gd.final_objective * 1.02;
  int gd_iters = gd.iterations;
  for (const auto& [it, j] : gd.objective_trace) {
    if (j <= target) {
      gd_iters = std::max(it, 1);
      break;
    }
  }
  std::printf("gradient descent: %d iterations to objective %.5g (L*=%td)\n",
              gd_iters, target, ref_engine.tuned_l());

  baselines::SgdConfig sgd;
  sgd.lambda = lasso.lambda;
  sgd.batch_rows = app.batch_rows;
  sgd.max_iterations = 30000;
  sgd.target_objective = target;
  sgd.check_every = 50;  // the full-objective check is the expensive part
  sgd.seed = 9;
  const auto sgd_ref = baselines::sgd_lasso(dist::Cluster(dist::Topology{1, 2}),
                                            app.a, app.y, sgd);
  std::printf("SGD: %d iterations (%s the GD objective)\n", sgd_ref.iterations,
              sgd_ref.reached_target ? "reached" : "did NOT reach");

  la::Vector x0(static_cast<std::size_t>(app.a.cols()), 1.0);
  util::Table table({"platform", "ExtDict total (ms)", "SGD total (ms)",
                     "improvement"});
  for (const auto& platform : dist::paper_platforms()) {
    // Per-iteration costs measured on this platform.
    const auto engine = core::ExtDict::preprocess(app.a, platform, options);
    const dist::Cluster cluster(platform.topology);
    const auto gd_iter = core::dist_gram_apply(
        cluster, engine.transform().dictionary,
        engine.transform().coefficients, x0, 1);
    const double gd_iter_ms = platform.modeled_seconds(gd_iter.stats) * 1e3;

    baselines::SgdConfig sgd_probe = sgd;
    sgd_probe.max_iterations = 1;
    sgd_probe.target_objective = -1;
    const auto sgd_iter = baselines::sgd_lasso(cluster, app.a, app.y, sgd_probe);
    const double sgd_iter_ms = platform.modeled_seconds(sgd_iter.stats) * 1e3;

    const double ext_total = gd_iters * gd_iter_ms;
    const double sgd_total = sgd_ref.iterations * sgd_iter_ms;
    table.add_row({platform.topology.name(), util::fmt(ext_total, 4),
                   util::fmt(sgd_total, 4),
                   util::fmt(sgd_total / ext_total, 3) + "x"});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main() {
  bench::banner("Fig. 9",
                "Denoising & super-resolution: ExtDict gradient descent vs SGD");

  // Shared light-field dataset (the paper uses the Light Field set for both
  // applications).
  data::LightFieldConfig lf_config;
  lf_config.scene_size = 160;
  lf_config.views = 5;
  lf_config.patch = 8;
  lf_config.num_patches = 1201;
  lf_config.disparity = 2.5;
  lf_config.view_gain_jitter = 0.05;
  lf_config.noise_stddev = 0.0003;
  lf_config.seed = 31;
  const auto lf = data::make_light_field(lf_config);

  // Hold out column 0 as the observation's ground truth: the solver must
  // genuinely combine dataset signals, not just point at its own column.
  std::vector<la::Index> rest(static_cast<std::size_t>(lf.a.cols()) - 1);
  for (std::size_t i = 0; i < rest.size(); ++i) {
    rest[i] = static_cast<la::Index>(i + 1);
  }
  const la::Matrix a_rest = lf.a.select_columns(rest);
  const la::Vector truth(lf.a.col(0).begin(), lf.a.col(0).end());

  la::Rng rng(12);

  // Denoising: noisy observation of the held-out signal; A = the rest.
  // Noise level matches the paper's 20 dB input SNR: the unit-norm signal
  // gets noise of norm ~0.1 (stddev 0.1/sqrt(M)).
  {
    App app;
    app.name = "Image denoising (LASSO, Adagrad)";
    app.a = a_rest;
    app.y = truth;
    for (auto& v : app.y) v += rng.gaussian(0, 0.0025);
    // The paper's batch of 64 rows out of 18496 is a 0.35% sample; keep the
    // same *fraction* on our 1600-row dataset so SGD faces the same
    // gradient-noise regime (an absolute 64 of 1600 would be 11x more
    // informative per step than the paper's setup).
    app.batch_rows = std::max<la::Index>(4, 64 * app.a.rows() / 18496);
    run_app(app);
  }

  // Super-resolution: held-out observation restricted to the central 3x3
  // views; A = the row-restricted dataset (576 of 1600 rows).
  {
    const auto subset = lf.view_subset_rows(3);
    App app;
    app.name = "Image super-resolution (LASSO, Adagrad)";
    app.a = a_rest.select_rows({subset.data(), subset.size()});
    app.y.resize(subset.size());
    for (std::size_t i = 0; i < subset.size(); ++i) {
      app.y[i] = truth[static_cast<std::size_t>(subset[i])];
    }
    // The paper's super-resolution A has 576 rows — identical to ours — so
    // the batch of 64 carries over unscaled.
    app.batch_rows = 64;
    run_app(app);
  }

  extdict::bench::note(
      "expected: improvement > 1x on every platform for both applications, "
      "growing when SGD fails to match the GD objective");
  return 0;
}
