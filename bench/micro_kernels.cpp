// Google-benchmark microbenches for the substrate kernels: dense BLAS,
// sparse products, factorizations, the sparse coder, and the emulated
// cluster's collectives. These are the building blocks whose constants
// shape every figure; run with --benchmark_filter=... to zoom in.

#include <benchmark/benchmark.h>

#include "core/exd.hpp"
#include "dist/cluster.hpp"
#include "la/blas.hpp"
#include "la/cholesky.hpp"
#include "la/csc_matrix.hpp"
#include "la/qr.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"

namespace {

using namespace extdict;

void BM_Gemv(benchmark::State& state) {
  const la::Index n = state.range(0);
  la::Rng rng(1);
  la::Matrix a = rng.gaussian_matrix(n, n);
  la::Vector x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  rng.fill_gaussian(x);
  for (auto _ : state) {
    la::gemv(1, a, x, 0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemv_flops(n, n)));
}
BENCHMARK(BM_Gemv)->Arg(128)->Arg(512)->Arg(1024);

void BM_GemvTransposed(benchmark::State& state) {
  const la::Index n = state.range(0);
  la::Rng rng(2);
  la::Matrix a = rng.gaussian_matrix(n, n);
  la::Vector x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(n));
  rng.fill_gaussian(x);
  for (auto _ : state) {
    la::gemv_t(1, a, x, 0, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemv_flops(n, n)));
}
BENCHMARK(BM_GemvTransposed)->Arg(128)->Arg(512)->Arg(1024);

void BM_Gemm(benchmark::State& state) {
  const la::Index n = state.range(0);
  la::Rng rng(3);
  la::Matrix a = rng.gaussian_matrix(n, n);
  la::Matrix b = rng.gaussian_matrix(n, n);
  la::Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(1, a, la::Trans::kNo, b, la::Trans::kNo, 0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemm_flops(n, n, n)));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_SpMV(benchmark::State& state) {
  const la::Index rows = 1000, cols = 4000;
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  la::Rng rng(4);
  la::CscMatrix::Builder builder(rows, cols);
  for (la::Index j = 0; j < cols; ++j) {
    for (la::Index i = 0; i < rows; ++i) {
      if (rng.uniform() < density) builder.add(i, rng.gaussian());
    }
    builder.commit_column();
  }
  const la::CscMatrix m = std::move(builder).build();
  la::Vector x(static_cast<std::size_t>(cols)), y(static_cast<std::size_t>(rows));
  rng.fill_gaussian(x);
  for (auto _ : state) {
    m.spmv(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.nnz()) * 2);
}
BENCHMARK(BM_SpMV)->Arg(2)->Arg(10)->Arg(50);  // 0.2%, 1%, 5% density

void BM_SpMVTransposed(benchmark::State& state) {
  const la::Index rows = 1000, cols = 4000;
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  la::Rng rng(5);
  la::CscMatrix::Builder builder(rows, cols);
  for (la::Index j = 0; j < cols; ++j) {
    for (la::Index i = 0; i < rows; ++i) {
      if (rng.uniform() < density) builder.add(i, rng.gaussian());
    }
    builder.commit_column();
  }
  const la::CscMatrix m = std::move(builder).build();
  la::Vector w(static_cast<std::size_t>(rows)), y(static_cast<std::size_t>(cols));
  rng.fill_gaussian(w);
  for (auto _ : state) {
    m.spmv_t(w, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m.nnz()) * 2);
}
BENCHMARK(BM_SpMVTransposed)->Arg(2)->Arg(10)->Arg(50);

void BM_Cholesky(benchmark::State& state) {
  const la::Index n = state.range(0);
  la::Rng rng(6);
  la::Matrix x = rng.gaussian_matrix(n + 8, n);
  la::Matrix g = la::gram(x);
  for (la::Index i = 0; i < n; ++i) g(i, i) += 1.0;
  for (auto _ : state) {
    la::Cholesky chol(g);
    benchmark::DoNotOptimize(&chol);
  }
}
BENCHMARK(BM_Cholesky)->Arg(64)->Arg(128)->Arg(256);

void BM_HouseholderQr(benchmark::State& state) {
  const la::Index n = state.range(0);
  la::Rng rng(7);
  la::Matrix a = rng.gaussian_matrix(2 * n, n);
  for (auto _ : state) {
    la::HouseholderQr qr(a);
    benchmark::DoNotOptimize(&qr);
  }
}
BENCHMARK(BM_HouseholderQr)->Arg(32)->Arg(64)->Arg(128);

void BM_BatchOmpEncode(benchmark::State& state) {
  const la::Index l = state.range(0);
  const la::Index m = 200;
  la::Rng rng(8);
  const la::Matrix dict = rng.gaussian_matrix(m, l, true);
  la::Vector signal(static_cast<std::size_t>(m), 0.0);
  for (int k = 0; k < 5; ++k) {
    la::axpy(rng.gaussian(), dict.col(rng.uniform_index(0, l - 1)), signal);
  }
  const la::Real norm = la::nrm2(signal);
  la::scal(1 / norm, signal);
  const sparsecoding::BatchOmp coder(dict, {.tolerance = 0.05, .max_atoms = 0});
  for (auto _ : state) {
    auto code = coder.encode(signal);
    benchmark::DoNotOptimize(code.entries.data());
  }
}
BENCHMARK(BM_BatchOmpEncode)->Arg(100)->Arg(400)->Arg(1600);

void BM_ClusterBroadcast(benchmark::State& state) {
  const la::Index p = state.range(0);
  const dist::Cluster cluster(dist::Topology{1, p});
  std::vector<la::Real> payload(4096, 1.0);
  for (auto _ : state) {
    cluster.run([&](dist::Communicator& comm) {
      std::vector<la::Real> buf = payload;
      comm.broadcast(0, std::span<la::Real>(buf));
      benchmark::DoNotOptimize(buf.data());
    });
  }
}
BENCHMARK(BM_ClusterBroadcast)->Arg(2)->Arg(8)->Arg(32);

void BM_ClusterAllreduce(benchmark::State& state) {
  const la::Index p = state.range(0);
  const dist::Cluster cluster(dist::Topology{1, p});
  for (auto _ : state) {
    cluster.run([&](dist::Communicator& comm) {
      std::vector<la::Real> buf(1024, static_cast<la::Real>(comm.rank()));
      comm.allreduce_sum(std::span<la::Real>(buf));
      benchmark::DoNotOptimize(buf.data());
    });
  }
}
BENCHMARK(BM_ClusterAllreduce)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
