// Fig. 5: tunability of the ExD transformation. For each of the three
// datasets, the average number of non-zeros per column of C (alpha) as a
// function of the dictionary size L, for transformation errors
// eps in {0.01, 0.05, 0.1}.
//
// Paper shape to reproduce: (i) alpha decreases as L grows (redundancy ->
// sparsity); (ii) alpha decreases as eps grows (error tolerance ->
// sparsity); (iii) the Cancer Cells set is visibly denser than the imaging
// sets at every (L, eps).

#include "bench_common.hpp"
#include "core/exd.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 5", "alpha(L) vs. L for eps in {0.01, 0.05, 0.1}");

  const auto sets = bench::BenchDatasets::load();
  const double epsilons[] = {0.01, 0.05, 0.1};

  for (const auto& entry : sets.entries) {
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), entry.a.rows(),
                entry.a.cols());
    util::Table table({"L", "alpha eps=0.01", "alpha eps=0.05", "alpha eps=0.1"});
    for (const la::Index l : entry.spec.l_grid) {
      std::vector<std::string> row = {std::to_string(l)};
      for (const double eps : epsilons) {
        core::ExdConfig config;
        config.dictionary_size = l;
        config.tolerance = eps;
        config.seed = 5;
        const core::ExdResult r = core::exd_transform(entry.a, config);
        std::string cell = util::fmt(r.alpha(), 4);
        if (r.transformation_error > eps * 1.05) cell += " (infeasible)";
        row.push_back(std::move(cell));
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note(
      "expected: alpha falls along every column (L up) and along every row "
      "(eps up); Cancer Cells densest throughout");
  return 0;
}
