// Fig. 10: runtime of the Power method finding the first 10 eigenvalues —
// ExtDict's (DC)^T DC updates vs the baseline A^T A updates — on the four
// platforms. Total time = measured iteration count x per-iteration modelled
// time.
//
// Paper shape: large wins everywhere (up to 8.68x Salina, 5.9x Cancer
// Cells, 71.2x Light Field), growing with the data's size/sparsifiability.

#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/extdict.hpp"
#include "solvers/power_method.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 10", "Power method (top-10 eigenvalues): ExtDict vs A^T A");

  const auto sets = bench::BenchDatasets::load();

  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());

    core::ExtDict::Options options;
    options.tolerance = 0.1;
    options.l_grid = entry.spec.l_grid;
    options.seed = 10;

    // Iteration counts (platform independent).
    const auto ref_engine = core::ExtDict::preprocess(
        a, dist::PlatformSpec::idataplex({1, 1}), options);
    solvers::PowerConfig power;
    power.num_eigenpairs = 10;
    power.tolerance = 1e-6;
    power.max_iterations = 400;
    core::DenseGramOperator dense(a);
    const auto base_run = solvers::power_method(dense, power);
    const auto ext_run = solvers::power_method(ref_engine.gram_operator(), power);
    std::printf("iterations to top-10: baseline %d, ExtDict %d\n",
                base_run.total_iterations(), ext_run.total_iterations());

    la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
    util::Table table({"platform", "L*", "A^T A total (ms)",
                       "ExtDict total (ms)", "improvement"});
    for (const auto& platform : dist::paper_platforms()) {
      const auto engine = core::ExtDict::preprocess(a, platform, options);
      const dist::Cluster cluster(platform.topology);
      const double ext_iter_ms =
          platform.modeled_seconds(
              core::dist_gram_apply(cluster, engine.transform().dictionary,
                                    engine.transform().coefficients, x0, 1)
                  .stats) * 1e3;
      const double base_iter_ms =
          platform.modeled_seconds(
              core::dist_gram_apply_original(cluster, a, x0, 1).stats) * 1e3;
      const double ext_total = ext_run.total_iterations() * ext_iter_ms;
      const double base_total = base_run.total_iterations() * base_iter_ms;
      table.add_row({platform.topology.name(), std::to_string(engine.tuned_l()),
                     util::fmt(base_total, 4), util::fmt(ext_total, 4),
                     util::fmt(base_total / ext_total, 3) + "x"});
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note("expected: improvement > 1x everywhere; iteration counts of the "
              "two pipelines comparable (same spectrum up to eps)");
  return 0;
}
