// Extension: strong scaling of one Gram update, P = 1..64, ExtDict vs the
// original A^T A — the curve behind Fig. 7's four sampled platforms. Also
// sweeps N at fixed P to expose the crossover the paper describes in the
// Fig. 9 discussion: growing P makes communication dominant, growing N
// makes FLOPs dominant again.

#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"
#include "data/hyperspectral.hpp"

int main() {
  using namespace extdict;
  bench::banner("Extra", "Strong scaling & data scaling of one Gram update");

  // --- Strong scaling at fixed data -----------------------------------------
  {
    const la::Matrix a = data::make_dataset(data::DatasetId::kSalina,
                                            data::Scale::kBench);
    core::ExdConfig exd;
    exd.dictionary_size = 60;
    exd.tolerance = 0.1;
    exd.seed = 23;
    const auto t = core::exd_transform(a, exd);
    la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);

    std::printf("\nstrong scaling (Salina %td x %td, L = 60)\n", a.rows(),
                a.cols());
    util::Table table({"platform", "P", "ExtDict (ms)", "A^T A (ms)",
                       "improvement", "ExtDict comm share"});
    const dist::Topology topologies[] = {{1, 1}, {1, 2}, {1, 4}, {1, 8},
                                         {2, 8}, {4, 8}, {8, 8}};
    for (const auto& topo : topologies) {
      const auto platform = dist::PlatformSpec::idataplex(topo);
      const dist::Cluster cluster(topo);
      const auto rt = core::dist_gram_apply(cluster, t.dictionary,
                                            t.coefficients, x0, 1);
      const auto ro = core::dist_gram_apply_original(cluster, a, x0, 1);
      const double ms_t = platform.modeled_seconds(rt.stats) * 1e3;
      const double ms_o = platform.modeled_seconds(ro.stats) * 1e3;
      // Communication share: modeled time with compute zeroed out.
      dist::RunStats comm_only = rt.stats;
      for (auto& c : comm_only.per_rank) c.flops = 0;
      const double share = platform.modeled_seconds(comm_only) / (ms_t / 1e3);
      table.add_row({topo.name(), std::to_string(topo.total()),
                     util::fmt(ms_t, 4), util::fmt(ms_o, 4),
                     util::fmt(ms_o / ms_t, 3) + "x",
                     util::fmt(100 * share, 3) + " %"});
    }
    std::printf("%s", table.str().c_str());
  }

  // --- Data scaling at fixed platform ---------------------------------------
  {
    std::printf("\ndata scaling (Salina-like, 8x8 platform, L tuned ~ fixed)\n");
    const auto platform = dist::PlatformSpec::idataplex({8, 8});
    const dist::Cluster cluster(platform.topology);
    util::Table table({"N", "ExtDict (ms)", "A^T A (ms)", "improvement",
                       "ExtDict comm share"});
    for (const la::Index n : {1000l, 2000l, 4000l, 8000l}) {
      data::HyperspectralConfig config;
      config.bands = 200;
      config.num_pixels = n;
      config.num_endmembers = 28;
      config.mix_size = 4;
      config.num_regions = 60;
      config.noise_stddev = 0.0005;
      const la::Matrix a = data::make_hyperspectral(config).a;
      core::ExdConfig exd;
      exd.dictionary_size = 60;
      exd.tolerance = 0.1;
      exd.seed = 23;
      const auto t = core::exd_transform(a, exd);
      la::Vector x0(static_cast<std::size_t>(n), 1.0);
      const auto rt = core::dist_gram_apply(cluster, t.dictionary,
                                            t.coefficients, x0, 1);
      const auto ro = core::dist_gram_apply_original(cluster, a, x0, 1);
      const double ms_t = platform.modeled_seconds(rt.stats) * 1e3;
      const double ms_o = platform.modeled_seconds(ro.stats) * 1e3;
      dist::RunStats comm_only = rt.stats;
      for (auto& c : comm_only.per_rank) c.flops = 0;
      const double share = platform.modeled_seconds(comm_only) / (ms_t / 1e3);
      table.add_row({std::to_string(n), util::fmt(ms_t, 4), util::fmt(ms_o, 4),
                     util::fmt(ms_o / ms_t, 3) + "x",
                     util::fmt(100 * share, 3) + " %"});
    }
    std::printf("%s", table.str().c_str());
  }

  bench::note(
      "expected: the communication share rises with P (fixed N) and falls "
      "with N (fixed P) — the paper's crossover argument in the Fig. 9 "
      "discussion; the improvement factor follows the FLOP-dominated end");
  return 0;
}
