#pragma once

// Shared plumbing for the table/figure reproduction harnesses. Every bench
// binary prints (a) what the paper reports for that table/figure and (b)
// our measured counterpart, using the scaled-down synthetic datasets
// documented in DESIGN.md.

#include <cstdio>
#include <string>
#include <vector>

#include "data/datasets.hpp"
#include "dist/platform.hpp"
#include "la/matrix.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace extdict::bench {

inline void banner(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

inline void note(const char* text) { std::printf("note: %s\n", text); }

/// All three evaluation datasets at bench scale, generated once.
struct BenchDatasets {
  struct Entry {
    data::DatasetSpec spec;
    la::Matrix a;
  };
  std::vector<Entry> entries;

  static BenchDatasets load() {
    BenchDatasets sets;
    for (const auto& spec : data::all_datasets()) {
      util::Timer t;
      la::Matrix a = data::make_dataset(spec.id, data::Scale::kBench);
      std::printf("[data] %s: %td x %td generated in %s\n", spec.name.c_str(),
                  a.rows(), a.cols(), util::format_duration_ms(t.elapsed_ms()).c_str());
      sets.entries.push_back({spec, std::move(a)});
    }
    return sets;
  }
};

inline std::string mb(std::uint64_t words) {
  return util::fmt(static_cast<double>(words) * sizeof(la::Real) / (1 << 20), 4) +
         " MB";
}

}  // namespace extdict::bench
