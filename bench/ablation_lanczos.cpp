// Ablation (extension): Lanczos vs the paper's deflated Power method for
// the top-10 Gram eigenvalues. Both consume Gram products — the quantity
// the ExD transform makes cheap — so the comparison is in products, plus
// the agreement of the spectra.

#include "bench_common.hpp"
#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "solvers/lanczos.hpp"
#include "solvers/power_method.hpp"

int main() {
  using namespace extdict;
  bench::banner("Ablation",
                "Lanczos vs deflated Power method (top-10 eigenvalues)");

  const auto sets = bench::BenchDatasets::load();
  util::Table table({"dataset", "power Gram products", "lanczos Gram products",
                     "saving", "spectrum disagreement", "lanczos dim"});
  for (const auto& entry : sets.entries) {
    core::ExdConfig exd;
    exd.dictionary_size = entry.spec.l_grid.back();
    exd.tolerance = 0.05;
    exd.seed = 21;
    const auto t = core::exd_transform(entry.a, exd);
    const core::TransformedGramOperator op(t.dictionary, t.coefficients);

    solvers::PowerConfig power;
    power.num_eigenpairs = 10;
    power.tolerance = 1e-8;
    power.max_iterations = 2000;
    const auto pr = solvers::power_method(op, power);

    solvers::LanczosConfig lan;
    lan.num_eigenpairs = 10;
    lan.tolerance = 1e-8;
    lan.max_subspace = 400;
    const auto lr = solvers::lanczos(op, lan);

    table.add_row({entry.spec.name, std::to_string(pr.total_iterations()),
                   std::to_string(lr.gram_products),
                   util::fmt(static_cast<double>(pr.total_iterations()) /
                                 lr.gram_products,
                             3) + "x",
                   util::fmt(solvers::eigenvalue_error(lr.eigenvalues,
                                                       pr.eigenvalues),
                             3),
                   std::to_string(lr.subspace_dimension)});
  }
  std::printf("%s", table.str().c_str());
  bench::note("expected: Lanczos needs several times fewer Gram products for "
              "the same spectrum (disagreement ~0)");
  return 0;
}
