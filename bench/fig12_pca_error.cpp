// Fig. 12: PCA learning error vs transformation error. The normalised
// cumulative error of the first 10 eigenvalues found by the Power method on
// (DC)^T DC, against the eigenvalues found on A^T A, as eps varies.
//
// Paper shape: the eigenvalue error stays small (1e-3 .. 1e-1 across the
// datasets) even at eps = 0.1 — the transform barely perturbs the dominant
// spectrum while the runtime improves drastically (Fig. 10).

#include "bench_common.hpp"
#include "core/exd.hpp"
#include "core/gram_operator.hpp"
#include "solvers/power_method.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 12", "PCA eigenvalue error vs transformation error");

  const auto sets = bench::BenchDatasets::load();
  const double epsilons[] = {0.01, 0.05, 0.1, 0.2};

  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());

    solvers::PowerConfig power;
    power.num_eigenpairs = 10;
    power.tolerance = 1e-7;
    power.max_iterations = 600;
    core::DenseGramOperator dense(a);
    const auto reference = solvers::power_method(dense, power);

    util::Table table({"eps", "cumulative top-10 eigenvalue error", "alpha"});
    for (const double eps : epsilons) {
      core::ExdConfig exd;
      // The largest grid dictionary (feasible for every eps tested — the
      // Cancer Cells set's L_min sits high in its grid).
      exd.dictionary_size = entry.spec.l_grid.back();
      exd.tolerance = eps;
      exd.seed = 12;
      const auto t = core::exd_transform(a, exd);
      const core::TransformedGramOperator op(t.dictionary, t.coefficients);
      const auto found = solvers::power_method(op, power);
      table.add_row({util::fmt(eps, 3),
                     util::fmt(solvers::eigenvalue_error(found.eigenvalues,
                                                         reference.eigenvalues),
                               4),
                     util::fmt(t.alpha(), 4)});
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note(
      "expected: error increases with eps but stays small; alpha (cost) "
      "falls with eps — the knob trades one for the other");
  return 0;
}
