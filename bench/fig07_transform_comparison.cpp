// Fig. 7: runtime improvement of ExtDict over the original A^T A update and
// over the state-of-the-art transformations (RCSS, oASIS, RankMap), for one
// Gram-matrix update, on the four platform configurations.
//
// Every transformation is computed for the same error eps = 0.1; ExtDict's
// L is tuned per platform. The per-iteration "runtime" is the platform-
// modelled time of the measured SPMD run (exact FLOP/word counters through
// the emulated cluster — see DESIGN.md §2 on the MPI substitution).
//
// Paper shape: ExtDict >= every baseline on every platform; it ties
// RankMap where the tuned dictionary is already the smallest feasible one
// (the paper's Light Field case), and the gap over the dense-C methods
// (RCSS/oASIS) is largest.

#include "baselines/oasis.hpp"
#include "baselines/rankmap.hpp"
#include "baselines/rcss.hpp"
#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"
#include "core/tuner.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 7",
                "Per-update runtime improvement of ExtDict over A^T A, RCSS, "
                "oASIS, RankMap (eps = 0.1)");

  const auto sets = bench::BenchDatasets::load();
  const double eps = 0.1;

  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());

    util::Timer prep;
    const auto rcss = baselines::rcss_transform_for_error(a, eps, 3);
    const auto oasis = baselines::oasis_transform(a, eps, 3);
    const auto rankmap = baselines::rankmap_transform(a, eps, 3);
    std::printf("baseline transforms ready in %s (RCSS L=%td, oASIS L=%td, "
                "RankMap L=%td)\n",
                util::format_duration_ms(prep.elapsed_ms()).c_str(),
                rcss.dictionary.cols(), oasis.dictionary.cols(),
                rankmap.dictionary.cols());

    la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
    util::Table table({"platform", "ExtDict L*", "vs A^T A", "vs RCSS",
                       "vs oASIS", "vs RankMap", "ExtDict (ms/iter)"});

    for (const auto& platform : dist::paper_platforms()) {
      // Platform-tuned ExD.
      core::TunerConfig tc;
      tc.profile.l_grid = entry.spec.l_grid;
      tc.profile.tolerance = eps;
      tc.profile.seed = 3;
      const la::Index n = a.cols();
      tc.subset_sizes = {n / 10, n / 4, n};
      const auto tuned = core::tune(a, platform, tc);
      core::ExdConfig exd;
      exd.dictionary_size = tuned.best_l;
      exd.tolerance = eps;
      exd.seed = 3;
      const auto ext = core::exd_transform(a, exd);

      const dist::Cluster cluster(platform.topology);
      auto iter_ms = [&](const la::Matrix& d, const la::CscMatrix& c) {
        const auto run = core::dist_gram_apply(cluster, d, c, x0, 1);
        return platform.modeled_seconds(run.stats) * 1e3;
      };
      const double t_ext = iter_ms(ext.dictionary, ext.coefficients);
      const double t_orig = platform.modeled_seconds(
          core::dist_gram_apply_original(cluster, a, x0, 1).stats) * 1e3;
      const double t_rcss = iter_ms(rcss.dictionary, rcss.coefficients);
      const double t_oasis = iter_ms(oasis.dictionary, oasis.coefficients);
      const double t_rankmap = iter_ms(rankmap.dictionary, rankmap.coefficients);

      table.add_row({platform.topology.name(), std::to_string(tuned.best_l),
                     util::fmt(t_orig / t_ext, 3) + "x",
                     util::fmt(t_rcss / t_ext, 3) + "x",
                     util::fmt(t_oasis / t_ext, 3) + "x",
                     util::fmt(t_rankmap / t_ext, 3) + "x",
                     util::fmt(t_ext, 4)});
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note(
      "paper peaks: up to 4.78x over A^T A, 9.1x over RCSS, 6.67x over "
      "oASIS, 2.63x over RankMap, with TIES against RankMap where the tuned "
      "dictionary is already the smallest feasible one (their Light Field "
      "case). Expect >= ~1x (ties within a few % count) and the same "
      "baseline ordering here.");
  return 0;
}
