// Ablation: the three dictionary-distribution strategies for Algorithm 2 —
// root-D (the paper's literal Case 1), replicated-D (Case 2), and
// partitioned-D (the parallelisation the paper's Eq. 2 models) — forced at
// every L. The auto dispatch (partitioned for L <= M, replicated for
// L > M) should pick a (near-)cheapest strategy at every point.

#include "bench_common.hpp"
#include "core/dist_gram.hpp"
#include "core/exd.hpp"

int main() {
  using namespace extdict;
  bench::banner("Ablation", "Alg. 2 dictionary-distribution strategies");

  const la::Matrix a = data::make_dataset(data::DatasetId::kSalina,
                                          data::Scale::kBench);
  std::printf("dataset: %td x %td (M = %td)\n", a.rows(), a.cols(), a.rows());
  la::Vector x0(static_cast<std::size_t>(a.cols()), 1.0);
  const auto platform = dist::PlatformSpec::idataplex({8, 8});
  const dist::Cluster cluster(platform.topology);

  util::Table table({"L", "regime", "root-D (ms)", "replicated-D (ms)",
                     "partitioned-D (ms)", "auto picks", "cheapest"});
  for (const la::Index l : {60l, 100l, 200l, 400l, 1000l}) {
    core::ExdConfig exd;
    exd.dictionary_size = l;
    exd.tolerance = 0.1;
    exd.seed = 14;
    const auto t = core::exd_transform(a, exd);

    auto run_ms = [&](core::GramStrategy strategy) {
      const auto run = core::dist_gram_apply(cluster, t.dictionary,
                                             t.coefficients, x0, 1, strategy);
      return platform.modeled_seconds(run.stats) * 1e3;
    };
    const double ms_root = run_ms(core::GramStrategy::kRootDictionary);
    const double ms_repl = run_ms(core::GramStrategy::kReplicatedDictionary);
    const double ms_part = run_ms(core::GramStrategy::kPartitionedDictionary);

    const bool auto_is_repl = l > a.rows();
    const double best = std::min({ms_root, ms_repl, ms_part});
    const char* cheapest = best == ms_part ? "partitioned"
                           : best == ms_repl ? "replicated"
                                             : "root";
    table.add_row({std::to_string(l), l > a.rows() ? "L > M" : "L <= M",
                   util::fmt(ms_root, 4), util::fmt(ms_repl, 4),
                   util::fmt(ms_part, 4),
                   auto_is_repl ? "replicated" : "partitioned", cheapest});
  }
  std::printf("%s", table.str().c_str());
  bench::note(
      "expected: partitioned-D beats root-D whenever the dense M*L work "
      "matters; replicated-D wins once L > M (smaller collectives)");
  return 0;
}
