// Fig. 6: effective ExD tuning from subsets of A. For nested random
// subsets A_1 ⊂ A_2 ⊂ ... ⊂ A, the density profile alpha(L) computed on
// the subset converges to the full-data profile — the property (§VII) that
// makes platform tuning cheap.
//
// Paper shape: with ~10% of the data, alpha(L) is estimated within ~14%.

#include <cmath>

#include "bench_common.hpp"
#include "core/alpha_profile.hpp"
#include "la/random.hpp"

int main() {
  using namespace extdict;
  bench::banner("Fig. 6", "alpha(L) estimated from nested subsets (eps = 0.1)");

  const auto sets = bench::BenchDatasets::load();
  for (const auto& entry : sets.entries) {
    const la::Index n = entry.a.cols();
    // Subset ladder ~ {2.5%, 5%, 10%, 25%, 50%, 100%} like the paper's A_1..A.
    const std::vector<la::Index> fractions = {n / 40, n / 20, n / 10,
                                              n / 4,  n / 2,  n};

    // Shared shuffled order -> nested subsets.
    la::Rng rng(11);
    const auto order = rng.permutation(n);

    core::AlphaProfileConfig config;
    config.tolerance = 0.1;
    config.seed = 6;
    // Probe a subrange of the dataset's grid that stays within the
    // smallest subset.
    for (const la::Index l : entry.spec.l_grid) {
      if (l <= fractions.front()) config.l_grid.push_back(l);
    }
    if (config.l_grid.empty()) config.l_grid.push_back(fractions.front() / 2);

    std::printf("\n%s (%td x %td), grid L in {", entry.spec.name.c_str(),
                entry.a.rows(), n);
    for (const auto l : config.l_grid) std::printf(" %td", l);
    std::printf(" }\n");

    std::vector<std::string> header = {"|A_s| (cols)"};
    for (const auto l : config.l_grid) header.push_back("alpha(L=" + std::to_string(l) + ")");
    header.push_back("max rel dev vs full");
    util::Table table(header);

    // Full-data reference profile (last ladder step) computed first.
    std::vector<core::AlphaProfile> profiles;
    for (const la::Index size : fractions) {
      const la::Matrix subset =
          entry.a.select_columns({order.data(), static_cast<std::size_t>(size)});
      profiles.push_back(core::estimate_alpha_profile(subset, config));
    }
    const core::AlphaProfile& full = profiles.back();

    for (std::size_t s = 0; s < profiles.size(); ++s) {
      std::vector<std::string> row = {std::to_string(fractions[s])};
      double max_dev = 0;
      for (const auto l : config.l_grid) {
        double alpha = std::nan("");
        for (const auto& p : profiles[s].points) {
          if (p.l == l) alpha = p.alpha_mean;
        }
        row.push_back(util::fmt(alpha, 4));
        for (const auto& q : full.points) {
          if (q.l == l && q.alpha_mean > 0 && !std::isnan(alpha)) {
            max_dev = std::max(max_dev,
                               std::abs(alpha - q.alpha_mean) / q.alpha_mean);
          }
        }
      }
      row.push_back(util::fmt(100 * max_dev, 3) + " %");
      table.add_row(std::move(row));
    }
    std::printf("%s", table.str().c_str());
  }
  bench::note(
      "expected: the deviation column shrinks as the subset grows; ~10% of "
      "the data already estimates alpha(L) closely");
  return 0;
}
