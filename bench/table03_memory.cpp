// Table III: memory footprint of the transformed representation at
// eps = 0.1, in two views:
//
//   (a) total storage of D and C — the baselines produce one fixed answer
//       regardless of the platform, ExtDict is tuned for memory;
//   (b) the paper's Eq. (4) per-node footprint, M·L + (nnz + N)/P, at every
//       platform P in {1, 4, 16, 64} for every method — the metric the
//       memory objective actually minimises, where ExtDict's platform
//       awareness is visible.
//
// Paper shape: ExtDict <= every baseline (up to 77.8x vs the original data,
// 8.6x vs RCSS, 6.4x vs oASIS, 3.8x vs RankMap), because over-complete
// dictionaries buy very sparse coefficient matrices; dense-C methods pay
// L x N storage.

#include "baselines/oasis.hpp"
#include "baselines/rankmap.hpp"
#include "baselines/rcss.hpp"
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "core/exd.hpp"
#include "core/tuner.hpp"

namespace {

using namespace extdict;

std::uint64_t eq4_words(la::Index m, la::Index l, std::uint64_t nnz, la::Index n,
                        la::Index p) {
  return static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(l) +
         (nnz + static_cast<std::uint64_t>(n)) / static_cast<std::uint64_t>(p);
}

}  // namespace

int main() {
  bench::banner("Table III", "Memory of D+C per transformation (eps = 0.1)");

  const auto sets = bench::BenchDatasets::load();
  const double eps = 0.1;

  for (const auto& entry : sets.entries) {
    const la::Matrix& a = entry.a;
    std::printf("\n%s (%td x %td)\n", entry.spec.name.c_str(), a.rows(), a.cols());

    const auto rcss = baselines::rcss_transform_for_error(a, eps, 3);
    const auto oasis = baselines::oasis_transform(a, eps, 3);
    const auto rankmap = baselines::rankmap_transform(a, eps, 3);

    // (a) Total D+C storage; ExtDict tuned for memory on a single node.
    core::TunerConfig tc;
    tc.profile.l_grid = entry.spec.l_grid;
    tc.profile.tolerance = eps;
    tc.profile.seed = 3;
    tc.objective = core::Objective::kMemory;
    const la::Index n = a.cols();
    tc.subset_sizes = {n / 10, n / 4, n};
    const auto tuned1 = core::tune(a, dist::PlatformSpec::idataplex({1, 1}), tc);
    core::ExdConfig exd;
    exd.dictionary_size = tuned1.best_l;
    exd.tolerance = eps;
    exd.seed = 3;
    const auto ext = core::exd_transform(a, exd);

    util::Table total({"method", "L", "total D+C storage"});
    total.add_row({"original A", "-", bench::mb(a.memory_words())});
    total.add_row({"RCSS", std::to_string(rcss.dictionary.cols()),
                   bench::mb(rcss.memory_words())});
    total.add_row({"oASIS", std::to_string(oasis.dictionary.cols()),
                   bench::mb(oasis.memory_words())});
    total.add_row({"RankMap", std::to_string(rankmap.dictionary.cols()),
                   bench::mb(rankmap.memory_words())});
    total.add_row({"ExtDict", std::to_string(ext.dictionary.cols()),
                   bench::mb(ext.memory_words())});
    std::printf("(a) total storage:\n%s", total.str().c_str());

    // (b) Eq. (4) per-node footprint; ExtDict re-tuned per platform.
    util::Table pernode({"method", "P=1", "P=4", "P=16", "P=64"});
    auto row_for = [&](const std::string& name, la::Index l, std::uint64_t nnz) {
      std::vector<std::string> row = {name};
      for (const la::Index p : {1, 4, 16, 64}) {
        row.push_back(bench::mb(eq4_words(a.rows(), l, nnz, n, p)));
      }
      pernode.add_row(std::move(row));
    };
    {
      // Original data: per-node slice of A plus x (no dictionary).
      std::vector<std::string> row = {"original A"};
      for (const la::Index p : {1, 4, 16, 64}) {
        row.push_back(bench::mb((a.memory_words() + static_cast<std::uint64_t>(n)) /
                                static_cast<std::uint64_t>(p)));
      }
      pernode.add_row(std::move(row));
    }
    row_for("RCSS", rcss.dictionary.cols(),
            static_cast<std::uint64_t>(rcss.coefficients.rows()) *
                static_cast<std::uint64_t>(rcss.coefficients.cols()));
    row_for("oASIS", oasis.dictionary.cols(),
            static_cast<std::uint64_t>(oasis.coefficients.rows()) *
                static_cast<std::uint64_t>(oasis.coefficients.cols()));
    row_for("RankMap", rankmap.dictionary.cols(), rankmap.coefficients.nnz());
    {
      std::vector<std::string> row = {"ExtDict (L* per P)"};
      for (const la::Index p : {1, 4, 16, 64}) {
        const auto platform = dist::PlatformSpec::idataplex(
            {p <= 8 ? 1 : p / 8, p <= 8 ? p : 8});
        const auto tuned = core::tune(a, platform, tc);
        const auto& point = tuned.profile.at(tuned.best_l);
        const auto nnz = static_cast<std::uint64_t>(
            point.alpha_mean * static_cast<double>(n));
        row.push_back(bench::mb(eq4_words(a.rows(), tuned.best_l, nnz, n, p)) +
                      " (L*=" + std::to_string(tuned.best_l) + ")");
      }
      pernode.add_row(std::move(row));
    }
    std::printf("(b) Eq. 4 per-node footprint:\n%s", pernode.str().c_str());
  }
  bench::note(
      "expected in (a): ExtDict <= RankMap < oASIS <= RCSS < original A; in "
      "(b): ExtDict lowest among the transforms, with L* free to shrink as "
      "P grows. The raw-A slice can undercut every transform per-node at "
      "large P because Eq. 4's M*L dictionary term is not amortised by P — "
      "exactly why the memory-objective tuner pushes L* down on big "
      "clusters (its runtime remains far worse; see Fig. 7).");
  return 0;
}
