// Serving-layer load bench: drives ExtDictServer with deterministic closed-
// and open-loop request streams across a batch × queue × worker sweep and
// writes the results as schema-stable JSON.
//
//   run_server_bench [--quick] [--out DIR] [--trace FILE]
//
// Emits BENCH_serve.json (validated by tools/validate_bench_json.py, run in
// CI's bench-smoke job): one case per configuration with the server's own
// accounting plus client-observed throughput and latency percentiles, and a
// summary asserting the serving contract. The process exits non-zero if
//
//   * any future fails to resolve within the watchdog window (a lost
//     request — the serving layer's cardinal sin),
//   * the accounting identities do not balance for any case,
//   * the closed-loop max_batch >= 32 configuration does not beat the
//     batch-size-1 configuration on throughput (the micro-batching
//     amortization claim, checked in quick mode too),
//   * the content-addressed cache sweep's warm pass fails to beat the cold
//     pass, its hit accounting is not exact, or the serve-while-extending
//     pass loses a future / unbalances the books / fails to flip and
//     reclaim epochs (emitted as a second document, BENCH_cache.json),
//   * the live-telemetry pass (emitted as a third document,
//     BENCH_telemetry.json) records fewer than 20 snapshots, any snapshot's
//     gauge levels fail to reconcile with the monotone counter identities,
//     the mid-run epoch flip is not visible as a serve.registry.epoch gauge
//     step, or the snapshotter's overhead exceeds the bench noise floor.
//
// Load generation is seeded: the signal pool and the open-loop exponential
// interarrival schedule come from fixed-seed generators, so two runs offer
// the identical request sequence (wall-clock results still vary with the
// machine, like every other bench here).
//
// --trace FILE records the serve.batch.* timeline of the flagship batched
// case — including the per-request serve.request.* lifecycle instants that
// tools/analyze_trace.py stitches into request waterfalls — and exports
// Chrome trace JSON.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "la/random.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace {

using namespace extdict;
using la::Index;
using la::Real;
using serve::BackpressurePolicy;
using serve::EncodeResult;
using serve::ExtDictServer;
using serve::ServerConfig;
using serve::ServerStats;
using util::Json;

using Clock = std::chrono::steady_clock;

struct Options {
  bool quick = false;
  std::string out_dir = ".";
  std::string trace_path;  // empty: tracing off
};

// One sweep point. `offered_rps == 0` means closed loop: submit every
// request back to back and let backpressure pace the client. Open-loop
// cases submit on a pre-drawn exponential-interarrival schedule.
struct CaseSpec {
  std::string name;
  Index max_batch = 1;
  std::uint64_t max_delay_us = 200;
  int workers = 1;
  std::size_t queue_capacity = 256;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  int requests = 0;
  double offered_rps = 0;
  bool traced = false;  // flagship case: records the serve.batch.* timeline
  // The amortization pair runs N passes and compares MEDIAN throughput: on
  // loaded single-core CI boxes a single closed-loop pass is too noisy to
  // anchor a pass/fail comparison, and best-of-N lets one lucky scheduler
  // quantum flip the verdict.
  int repeats = 1;
};

const char* policy_name(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kReject: return "reject";
    case BackpressurePolicy::kShedOldest: return "shed_oldest";
  }
  return "?";
}

// Client-observed outcome of one case: every future resolved, bucketed by
// how. `lost` counts futures that never resolved — always fatal.
struct CaseResult {
  std::uint64_t served = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t stopped = 0;
  std::uint64_t invalid = 0;
  std::uint64_t failed = 0;
  std::uint64_t lost = 0;
  double wall_seconds = 0;
  util::Histogram total_latency;  // queue wait + encode window, per request
  util::Histogram queue_latency;
  ServerStats stats;
};

void resolve_future(std::future<EncodeResult>& future, CaseResult& result) {
  using namespace std::chrono_literals;
  if (future.wait_for(30s) != std::future_status::ready) {
    ++result.lost;
    return;
  }
  try {
    const EncodeResult encoded = future.get();
    ++result.served;
    result.queue_latency.record(encoded.queue_seconds);
    result.total_latency.record(encoded.queue_seconds + encoded.encode_seconds);
  } catch (const serve::RequestRejected&) {
    ++result.rejected;
  } catch (const serve::RequestShed&) {
    ++result.shed;
  } catch (const serve::ServerStopped&) {
    ++result.stopped;
  } catch (const serve::InvalidRequest&) {
    ++result.invalid;
  } catch (...) {
    ++result.failed;
  }
}

// Deterministic pool of unit-scale gaussian signals; request i submits
// pool[i % pool_size], so every configuration sees the same stream.
std::vector<std::vector<Real>> make_signal_pool(Index m, int pool_size,
                                                unsigned seed) {
  la::Rng rng(seed);
  std::vector<std::vector<Real>> pool(static_cast<std::size_t>(pool_size));
  for (auto& signal : pool) {
    signal.resize(static_cast<std::size_t>(m));
    rng.fill_gaussian(signal);
  }
  return pool;
}

// Fills `result` in place (CaseResult is pinned: util::Histogram cells are
// neither copyable nor movable).
void run_case(const CaseSpec& spec, const la::Matrix& dict,
              const std::vector<std::vector<Real>>& pool,
              const sparsecoding::OmpConfig& omp, CaseResult& result) {
  ExtDictServer server(dict, {.max_batch = spec.max_batch,
                              .max_delay_us = spec.max_delay_us,
                              .workers = spec.workers,
                              .queue_capacity = spec.queue_capacity,
                              .backpressure = spec.policy,
                              .omp = omp});

  // Open-loop arrival schedule, drawn up front from a fixed seed.
  std::vector<double> arrival_s;
  if (spec.offered_rps > 0) {
    std::mt19937_64 gen(0x5eedULL + static_cast<std::uint64_t>(spec.requests));
    std::exponential_distribution<double> interarrival(spec.offered_rps);
    arrival_s.reserve(static_cast<std::size_t>(spec.requests));
    double t = 0;
    for (int i = 0; i < spec.requests; ++i) {
      t += interarrival(gen);
      arrival_s.push_back(t);
    }
  }

  std::vector<std::future<EncodeResult>> futures;
  futures.reserve(static_cast<std::size_t>(spec.requests));

  const Clock::time_point start = Clock::now();
  for (int i = 0; i < spec.requests; ++i) {
    if (spec.offered_rps > 0) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          arrival_s[static_cast<std::size_t>(i)])));
    }
    futures.push_back(
        server.submit(pool[static_cast<std::size_t>(i) % pool.size()]));
  }
  for (auto& future : futures) resolve_future(future, result);
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.stop();
  result.stats = server.stats();
}

bool accounting_balances(const CaseSpec& spec, const CaseResult& r) {
  const ServerStats& s = r.stats;
  const auto client_total = r.served + r.rejected + r.shed + r.stopped +
                            r.invalid + r.failed + r.lost;
  // Cache hits resolve before the queue, so they are their own branch of
  // the submit identity; the client cannot tell a hit from a serve, hence
  // served + cache_hits on the client side.
  return r.lost == 0 &&
         client_total == static_cast<std::uint64_t>(spec.requests) &&
         s.submitted == static_cast<std::uint64_t>(spec.requests) &&
         s.submitted ==
             s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits &&
         s.accepted == s.served + s.encode_failed + s.shed + s.discarded &&
         s.columns_encoded == s.served + s.encode_failed &&
         s.served + s.cache_hits == r.served && s.rejected == r.rejected &&
         s.shed == r.shed;
}

Json latency_json(const util::Histogram& h) {
  Json j = Json::object();
  j["count"] = h.count();
  j["mean_seconds"] =
      h.count() == 0 ? 0.0 : h.sum() / static_cast<double>(h.count());
  j["p50_seconds"] = h.quantile(0.50);
  j["p90_seconds"] = h.quantile(0.90);
  j["p95_seconds"] = h.quantile(0.95);
  j["p99_seconds"] = h.quantile(0.99);
  j["max_seconds"] = h.max();
  return j;
}

Json case_json(const CaseSpec& spec, const CaseResult& r) {
  Json j = Json::object();
  j["name"] = spec.name;
  j["loop"] = spec.offered_rps > 0 ? "open" : "closed";
  j["policy"] = policy_name(spec.policy);
  j["max_batch"] = static_cast<std::uint64_t>(spec.max_batch);
  j["max_delay_us"] = spec.max_delay_us;
  j["workers"] = static_cast<std::uint64_t>(spec.workers);
  j["queue_capacity"] = static_cast<std::uint64_t>(spec.queue_capacity);
  j["requests"] = static_cast<std::uint64_t>(spec.requests);
  if (spec.offered_rps > 0) j["offered_rps"] = spec.offered_rps;
  j["wall_seconds"] = r.wall_seconds;
  j["throughput_rps"] =
      r.wall_seconds > 0 ? static_cast<double>(r.served) / r.wall_seconds : 0.0;

  Json counts = Json::object();
  const ServerStats& s = r.stats;
  counts["submitted"] = s.submitted;
  counts["accepted"] = s.accepted;
  counts["served"] = s.served;
  counts["rejected"] = s.rejected;
  counts["shed"] = s.shed;
  counts["stopped"] = s.stopped;
  counts["discarded"] = s.discarded;
  counts["invalid"] = s.invalid;
  counts["encode_failed"] = s.encode_failed;
  counts["lost"] = r.lost;
  counts["batches"] = s.batches;
  counts["columns_encoded"] = s.columns_encoded;
  counts["max_batch_columns"] = s.max_batch_columns;
  j["counts"] = std::move(counts);

  j["latency"] = latency_json(r.total_latency);
  j["queue_wait"] = latency_json(r.queue_latency);
  return j;
}

std::vector<CaseSpec> build_sweep(bool quick) {
  const int closed_n = quick ? 1000 : 8000;
  const int pair_n = quick ? 2000 : 8000;
  const int open_n = quick ? 400 : 4000;
  const double open_rate = quick ? 4000.0 : 8000.0;

  std::vector<CaseSpec> sweep;
  // The amortization pair: identical load, batch 1 vs 32, one worker each.
  sweep.push_back({.name = "closed_batch1_w1",
                   .max_batch = 1,
                   .workers = 1,
                   .requests = pair_n,
                   .repeats = 7});
  sweep.push_back({.name = "closed_batch32_w1",
                   .max_batch = 32,
                   .workers = 1,
                   .requests = pair_n,
                   .traced = true,
                   .repeats = 7});
  sweep.push_back({.name = "closed_batch32_w2",
                   .max_batch = 32,
                   .workers = 2,
                   .requests = closed_n});
  // Backpressure under a tiny queue: reject and shed must stay accounted.
  sweep.push_back({.name = "open_reject_q8",
                   .max_batch = 8,
                   .workers = 1,
                   .queue_capacity = 8,
                   .policy = BackpressurePolicy::kReject,
                   .requests = open_n,
                   .offered_rps = open_rate});
  sweep.push_back({.name = "open_shed_q8",
                   .max_batch = 8,
                   .workers = 1,
                   .queue_capacity = 8,
                   .policy = BackpressurePolicy::kShedOldest,
                   .requests = open_n,
                   .offered_rps = open_rate});
  sweep.push_back({.name = "open_block_q64",
                   .max_batch = 16,
                   .workers = 2,
                   .queue_capacity = 64,
                   .requests = open_n,
                   .offered_rps = open_rate});
  if (!quick) {
    for (const Index batch : {Index{8}, Index{64}}) {
      for (const int workers : {2, 4}) {
        sweep.push_back(
            {.name = "closed_batch" + std::to_string(batch) + "_w" +
                     std::to_string(workers),
             .max_batch = batch,
             .workers = workers,
             .requests = closed_n});
      }
    }
  }
  return sweep;
}

// -- Content-addressed cache sweep + serve-while-extending pass --------------
// (BENCH_cache.json)

struct CachePassResult {
  double wall_seconds = 0;
  std::uint64_t served = 0;
  std::uint64_t errors = 0;
  std::uint64_t lost = 0;
  serve::EncodeCacheStats cache;
  ServerStats stats;
};

// Serial closed loop: submit → wait → submit. Serialized round trips make
// the hit accounting EXACT: a repeated signal can only miss if its first
// occurrence has not been inserted yet, which waiting rules out — so a
// warm pass over a pool of P signals and R requests must score exactly
// R - P hits. The cold pass runs the identical stream with the cache off.
void run_cache_pass(const la::Matrix& dict, const sparsecoding::OmpConfig& omp,
                    const std::vector<std::vector<Real>>& pool, int requests,
                    std::size_t cache_capacity, CachePassResult& out,
                    util::Histogram& latency) {
  using namespace std::chrono_literals;
  ExtDictServer server(dict, {.max_batch = 8,
                              .max_delay_us = 50,
                              .workers = 2,
                              .queue_capacity = 256,
                              .omp = omp,
                              .cache_capacity = cache_capacity});
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < requests; ++i) {
    const Clock::time_point t0 = Clock::now();
    auto future =
        server.submit(pool[static_cast<std::size_t>(i) % pool.size()]);
    if (future.wait_for(30s) != std::future_status::ready) {
      ++out.lost;
      continue;
    }
    try {
      (void)future.get();
      ++out.served;
    } catch (...) {
      ++out.errors;
    }
    latency.record(std::chrono::duration<double>(Clock::now() - t0).count());
  }
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.stop();
  out.stats = server.stats();
  out.cache = server.cache_stats();
}

Json cache_pass_json(const CachePassResult& r, const util::Histogram& latency,
                     int requests) {
  Json j = Json::object();
  j["wall_seconds"] = r.wall_seconds;
  j["throughput_rps"] =
      r.wall_seconds > 0 ? static_cast<double>(r.served) / r.wall_seconds : 0.0;
  j["served"] = r.served;
  j["lost"] = r.lost;
  j["hits"] = r.cache.hits;
  j["misses"] = r.cache.misses;
  j["hit_ratio"] = requests > 0
                       ? static_cast<double>(r.cache.hits) / requests
                       : 0.0;
  j["insertions"] = r.cache.insertions;
  j["evictions"] = r.cache.evictions;
  j["latency"] = latency_json(latency);
  return j;
}

// Interleaved cold/warm rounds (same rationale as the amortization duel:
// per-round ratios share machine state, the verdict is their median).
Json run_cache_sweep(const la::Matrix& dict, const sparsecoding::OmpConfig& omp,
                     const std::vector<std::vector<Real>>& full_pool,
                     bool quick, bool& violated) {
  // Repeats must dominate for the sweep to mean anything: draw from a
  // 32-signal slice of the workload pool so a warm pass hits on all but
  // the first occurrence of each signal.
  const std::vector<std::vector<Real>> pool(
      full_pool.begin(),
      full_pool.begin() + std::min<std::size_t>(32, full_pool.size()));
  const int requests = quick ? 256 : 2048;
  const int rounds = quick ? 3 : 5;
  const std::size_t warm_capacity = 2 * pool.size();

  std::vector<std::unique_ptr<CachePassResult>> cold_passes, warm_passes;
  util::Histogram cold_latency, warm_latency;
  std::vector<double> round_ratio;
  bool books_ok = true;
  bool hits_exact = true;
  for (int r = 0; r < rounds; ++r) {
    cold_passes.push_back(std::make_unique<CachePassResult>());
    run_cache_pass(dict, omp, pool, requests, 0, *cold_passes.back(),
                   cold_latency);
    warm_passes.push_back(std::make_unique<CachePassResult>());
    run_cache_pass(dict, omp, pool, requests, warm_capacity,
                   *warm_passes.back(), warm_latency);
    const CachePassResult& cold = *cold_passes.back();
    const CachePassResult& warm = *warm_passes.back();
    if (cold.wall_seconds > 0 && warm.wall_seconds > 0) {
      round_ratio.push_back(cold.wall_seconds / warm.wall_seconds);
    }
    for (const CachePassResult* p : {&cold, &warm}) {
      books_ok = books_ok && p->lost == 0 && p->errors == 0 &&
                 p->served == static_cast<std::uint64_t>(requests) &&
                 p->stats.submitted == p->stats.accepted + p->stats.invalid +
                                           p->stats.rejected + p->stats.stopped +
                                           p->stats.cache_hits;
    }
    hits_exact = hits_exact && cold.cache.hits == 0 &&
                 warm.cache.hits ==
                     static_cast<std::uint64_t>(requests) - pool.size() &&
                 warm.cache.hits + warm.cache.misses ==
                     static_cast<std::uint64_t>(requests);
  }
  std::sort(round_ratio.begin(), round_ratio.end());
  const double warm_speedup =
      round_ratio.empty() ? 0.0 : round_ratio[round_ratio.size() / 2];
  const bool warm_beats_cold = warm_speedup > 1.0;
  violated = violated || !books_ok || !hits_exact || !warm_beats_cold;

  // Report the fastest pass of each side (the duel verdict stays median).
  const auto fastest = [](const auto& passes) -> const CachePassResult& {
    std::size_t best = 0;
    for (std::size_t i = 1; i < passes.size(); ++i) {
      if (passes[i]->wall_seconds < passes[best]->wall_seconds) best = i;
    }
    return *passes[best];
  };

  Json j = Json::object();
  j["requests"] = static_cast<std::uint64_t>(requests);
  j["rounds"] = static_cast<std::uint64_t>(rounds);
  j["pool_size"] = static_cast<std::uint64_t>(pool.size());
  j["warm_capacity"] = static_cast<std::uint64_t>(warm_capacity);
  j["expected_warm_hit_ratio"] =
      static_cast<double>(requests - static_cast<int>(pool.size())) / requests;
  j["cold"] = cache_pass_json(fastest(cold_passes), cold_latency, requests);
  j["warm"] = cache_pass_json(fastest(warm_passes), warm_latency, requests);
  j["warm_speedup"] = warm_speedup;  // median of per-round wall-time ratios
  j["warm_beats_cold"] = warm_beats_cold;
  j["hit_accounting_exact"] = hits_exact;
  j["accounting_balanced"] = books_ok;

  std::printf("  cache sweep: cold %.3fs vs warm %.3fs (%.2fx, hits %s)%s\n",
              fastest(cold_passes).wall_seconds,
              fastest(warm_passes).wall_seconds, warm_speedup,
              hits_exact ? "exact" : "WRONG",
              warm_beats_cold && books_ok && hits_exact ? ""
                                                        : "  [VIOLATION]");
  return j;
}

// Serve-while-extending: producers hammer a cached server drawing from the
// shared pool while the main thread flips the dictionary epoch repeatedly.
// Zero lost futures, balanced identities, monotone per-producer epochs, and
// old epochs fully reclaimed after the drain — the zero-downtime contract.
Json run_extend_pass(const la::Matrix& dict, const sparsecoding::OmpConfig& omp,
                     const std::vector<std::vector<Real>>& pool, bool quick,
                     bool& violated) {
  using namespace std::chrono_literals;
  const int producers = 4;
  const int per_producer = quick ? 200 : 1000;
  const int flips = 3;
  const Index atoms_per_flip = 8;

  auto registry = std::make_shared<serve::DictRegistry>(dict, omp);
  ExtDictServer server(registry, {.max_batch = 8,
                                  .max_delay_us = 50,
                                  .workers = 2,
                                  .queue_capacity = 256,
                                  .omp = omp,
                                  .cache_capacity = 2 * pool.size()});
  std::atomic<std::uint64_t> served{0}, errors{0}, lost{0};
  std::atomic<bool> epoch_regressed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  const Clock::time_point start = Clock::now();
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      std::uint64_t last_epoch = 0;
      for (int i = 0; i < per_producer; ++i) {
        auto future = server.submit(
            pool[static_cast<std::size_t>(p * 31 + i) % pool.size()]);
        if (future.wait_for(30s) != std::future_status::ready) {
          lost.fetch_add(1);
          continue;
        }
        try {
          const EncodeResult result = future.get();
          // May lag the registry (pinned batches, cached codes) but must
          // never run backwards within one producer.
          if (result.dict_epoch < last_epoch) epoch_regressed = true;
          last_epoch = std::max(last_epoch, result.dict_epoch);
          served.fetch_add(1);
        } catch (...) {
          errors.fetch_add(1);
        }
      }
    });
  }

  std::vector<double> flip_seconds;
  {
    la::Rng flip_rng(19);
    for (int f = 0; f < flips; ++f) {
      std::this_thread::sleep_for(2ms);
      const Clock::time_point t0 = Clock::now();
      registry->extend(
          flip_rng.gaussian_matrix(dict.rows(), atoms_per_flip, true));
      flip_seconds.push_back(
          std::chrono::duration<double>(Clock::now() - t0).count());
    }
  }
  for (auto& t : threads) t.join();
  const double wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.stop();

  const ServerStats s = server.stats();
  const serve::EncodeCacheStats c = server.cache_stats();
  const auto total =
      static_cast<std::uint64_t>(producers) * per_producer;
  const bool balanced =
      s.submitted == total &&
      s.submitted ==
          s.accepted + s.invalid + s.rejected + s.stopped + s.cache_hits &&
      s.accepted == s.served + s.encode_failed + s.shed + s.discarded &&
      s.columns_encoded == s.served + s.encode_failed &&
      s.served + s.cache_hits == served.load() &&
      c.hits == s.cache_hits;
  double max_flip_seconds = 0;
  for (const double fs : flip_seconds) {
    max_flip_seconds = std::max(max_flip_seconds, fs);
  }
  const bool ok = lost.load() == 0 && errors.load() == 0 &&
                  !epoch_regressed.load() && balanced &&
                  registry->current_epoch() ==
                      static_cast<std::uint64_t>(flips) &&
                  registry->live_epochs() == 1;
  violated = violated || !ok;

  Json j = Json::object();
  j["producers"] = static_cast<std::uint64_t>(producers);
  j["requests_per_producer"] = static_cast<std::uint64_t>(per_producer);
  j["flips"] = static_cast<std::uint64_t>(flips);
  j["atoms_per_flip"] = static_cast<std::uint64_t>(atoms_per_flip);
  j["epoch_after"] = registry->current_epoch();
  j["atoms_before"] = static_cast<std::uint64_t>(dict.cols());
  j["atoms_after"] = static_cast<std::uint64_t>(registry->atom_count());
  j["wall_seconds"] = wall_seconds;
  j["served"] = served.load();
  j["cache_hits"] = s.cache_hits;
  j["lost"] = lost.load();
  j["errors"] = errors.load();
  Json flip_json = Json::array();
  for (const double fs : flip_seconds) flip_json.push_back(fs);
  j["flip_seconds"] = std::move(flip_json);
  j["max_flip_seconds"] = max_flip_seconds;
  j["epochs_monotone_per_producer"] = !epoch_regressed.load();
  j["live_epochs_after_drain"] =
      static_cast<std::uint64_t>(registry->live_epochs());
  j["accounting_balanced"] = balanced;
  j["contract_held"] = ok;

  std::printf(
      "  extend pass: %d flips under %llu requests, max flip %.1f ms, "
      "hits %llu%s\n",
      flips, static_cast<unsigned long long>(total), max_flip_seconds * 1e3,
      static_cast<unsigned long long>(s.cache_hits),
      ok ? "" : "  [VIOLATION]");
  return j;
}

// -- Live-telemetry pass (BENCH_telemetry.json) -------------------------------

std::uint64_t record_counter(const Json& record, const char* name) {
  const Json* cell = record.at("counters").find(name);
  return cell == nullptr ? 0 : cell->as_u64();
}

std::int64_t record_gauge(const Json& record, const char* name) {
  const Json* cell = record.at("gauges").find(name);
  return cell == nullptr ? 0 : static_cast<std::int64_t>(cell->as_double());
}

double window_field(const Json& record, const char* hist, const char* field) {
  const Json* cell = record.at("window_quantiles").find(hist);
  if (cell == nullptr) return 0.0;
  const Json* value = cell->find(field);
  return value == nullptr ? 0.0 : value->as_double();
}

// The per-snapshot serving identity: everything accepted is either resolved
// (served / encode-failed / shed / discarded), still queued, or in flight.
// Counters and gauges are sampled a few instructions apart from the racing
// mutators, so live snapshots may be off by a bounded transient; the drained
// final snapshot must reconcile exactly.
std::int64_t snapshot_residual(const Json& record) {
  const auto expected =
      static_cast<std::int64_t>(record_counter(record, "serve.accepted")) -
      static_cast<std::int64_t>(record_counter(record, "serve.served")) -
      static_cast<std::int64_t>(
          record_counter(record, "serve.encode_failures")) -
      static_cast<std::int64_t>(record_counter(record, "serve.shed")) -
      static_cast<std::int64_t>(record_counter(record, "serve.discarded"));
  const std::int64_t level = record_gauge(record, "serve.queue.depth") +
                             record_gauge(record, "serve.inflight");
  return level - expected;
}

// One closed-loop encode pass, optionally shadowed by a live snapshotter —
// the overhead duel's unit of work. Returns the pass wall seconds.
double run_overhead_pass(const la::Matrix& dict,
                         const sparsecoding::OmpConfig& omp,
                         const std::vector<std::vector<Real>>& pool,
                         int requests, const std::string& snapshot_path) {
  using namespace std::chrono_literals;
  ExtDictServer server(dict, {.max_batch = 8,
                              .max_delay_us = 50,
                              .workers = 2,
                              .queue_capacity = 256,
                              .omp = omp});
  std::unique_ptr<util::TelemetrySnapshotter> snapshotter;
  if (!snapshot_path.empty()) {
    snapshotter = std::make_unique<util::TelemetrySnapshotter>(
        util::MetricsRegistry::global(), snapshot_path,
        util::TelemetryOptions{.period_ms = 50});
  }
  const Clock::time_point start = Clock::now();
  std::vector<std::future<EncodeResult>> futures;
  futures.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    futures.push_back(
        server.submit(pool[static_cast<std::size_t>(i) % pool.size()]));
  }
  for (auto& future : futures) {
    if (future.wait_for(30s) == std::future_status::ready) {
      try {
        (void)future.get();
      } catch (...) {
        // Outcome bucketing is the main passes' job; this one only times.
      }
    }
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Tentpole pass: open-loop load with a mid-run epoch flip while a
// TelemetrySnapshotter samples the global registry every 50 ms. The JSONL
// stream is parsed back and every snapshot is reconciled against the serving
// identity; an interleaved duel then bounds the snapshotter's overhead.
Json run_telemetry_pass(const la::Matrix& dict,
                        const sparsecoding::OmpConfig& omp,
                        const std::vector<std::vector<Real>>& pool,
                        const Options& options, bool& violated) {
  using namespace std::chrono_literals;
  util::MetricsRegistry& metrics = util::MetricsRegistry::global();

  // The schedule, not the machine, bounds the pass: the last arrival lands
  // at ~requests/offered_rps seconds, so even a fast box holds the load open
  // long enough for >= 20 snapshot periods (the acceptance floor) in quick
  // mode too.
  const int requests = 3000;
  const double offered_rps = 2000.0;
  const std::int64_t period_ms = 50;
  const int flip_at = requests / 2;
  const Index atoms_per_flip = 8;
  // Room for every pool signal under two epochs: hits climb while an epoch
  // is stable, the flip invalidates the working set (new epoch, new keys),
  // and the occupancy gauges show the second epoch's set filling alongside
  // the first — all visible in the snapshot stream.
  const std::size_t cache_capacity = 2 * pool.size();
  // Live-snapshot slack: every thread mid-transition between a counter bump
  // and its adjacent gauge update skews the identity by at most 1 request,
  // and the sampler itself reads the maps over a short window. 1 submitter +
  // 2 workers bounds the instantaneous skew; doubled twice for headroom.
  const std::int64_t tolerance = 12;
  const std::string jsonl_name = "telemetry_serve.jsonl";
  const std::string jsonl_path = options.out_dir + "/" + jsonl_name;

  // Counters must start from zero for the snapshots to reconcile against
  // the gauge levels. Gauges are already balanced back to zero here (every
  // earlier server drained and was destroyed); reset() clears any residue.
  metrics.reset();
  metrics.set_enabled(true);

  auto registry = std::make_shared<serve::DictRegistry>(dict, omp);
  std::uint64_t lost = 0, errors = 0, client_served = 0;
  std::uint64_t snapshot_count = 0;
  double flip_wall_ms = -1.0, flip_seconds = 0.0, wall_seconds = 0.0;
  ServerStats stats;
  serve::EncodeCacheStats cache;
  bool snapshotter_ok = false;
  {
    ExtDictServer server(registry, {.max_batch = 8,
                                    .max_delay_us = 200,
                                    .workers = 2,
                                    .queue_capacity = 256,
                                    .omp = omp,
                                    .cache_capacity = cache_capacity});
    util::TelemetrySnapshotter snapshotter(
        metrics, jsonl_path, util::TelemetryOptions{.period_ms = period_ms});

    std::mt19937_64 gen(0x5eedULL + static_cast<std::uint64_t>(requests));
    std::exponential_distribution<double> interarrival(offered_rps);
    std::vector<double> arrival_s;
    arrival_s.reserve(static_cast<std::size_t>(requests));
    double t = 0;
    for (int i = 0; i < requests; ++i) {
      t += interarrival(gen);
      arrival_s.push_back(t);
    }

    std::vector<std::future<EncodeResult>> futures;
    futures.reserve(static_cast<std::size_t>(requests));
    const Clock::time_point start = Clock::now();
    for (int i = 0; i < requests; ++i) {
      if (i == flip_at) {
        la::Rng flip_rng(19);
        const Clock::time_point t0 = Clock::now();
        registry->extend(
            flip_rng.gaussian_matrix(dict.rows(), atoms_per_flip, true));
        const Clock::time_point t1 = Clock::now();
        flip_seconds = std::chrono::duration<double>(t1 - t0).count();
        flip_wall_ms =
            std::chrono::duration<double, std::milli>(t1 - start).count();
      }
      std::this_thread::sleep_until(
          start + std::chrono::duration<double>(arrival_s[static_cast<
                      std::size_t>(i)]));
      futures.push_back(
          server.submit(pool[static_cast<std::size_t>(i) % pool.size()]));
    }
    for (auto& future : futures) {
      if (future.wait_for(30s) != std::future_status::ready) {
        ++lost;
        continue;
      }
      try {
        (void)future.get();
        ++client_served;
      } catch (...) {
        ++errors;
      }
    }
    wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    server.stop();  // drain: the final snapshot must reconcile exactly
    snapshotter.stop();
    snapshot_count = snapshotter.snapshots_written();
    snapshotter_ok = snapshotter.ok();
    stats = server.stats();
    cache = server.cache_stats();
  }

  // Parse the stream back and reconcile every snapshot.
  std::vector<Json> records;
  {
    std::ifstream in(jsonl_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) records.push_back(Json::parse(line));
    }
  }

  Json snapshots = Json::array();
  bool seq_monotone = true;
  std::int64_t max_abs_residual = 0, final_residual = 0;
  std::size_t first_flipped = records.size();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const Json& record = records[i];
    if (static_cast<std::size_t>(record.at("seq").as_u64()) != i) {
      seq_monotone = false;
    }
    const std::int64_t residual = snapshot_residual(record);
    max_abs_residual = std::max(max_abs_residual, std::abs(residual));
    if (i + 1 == records.size()) final_residual = residual;
    if (first_flipped == records.size() &&
        record_gauge(record, "serve.registry.epoch") >= 1) {
      first_flipped = i;
    }

    Json snap = Json::object();
    snap["seq"] = record.at("seq").as_u64();
    snap["wall_ms"] = record.at("wall_ms").as_double();
    snap["submitted"] = record_counter(record, "serve.submitted");
    snap["accepted"] = record_counter(record, "serve.accepted");
    snap["served"] = record_counter(record, "serve.served");
    snap["encode_failures"] = record_counter(record, "serve.encode_failures");
    snap["shed"] = record_counter(record, "serve.shed");
    snap["discarded"] = record_counter(record, "serve.discarded");
    snap["cache_hits"] = record_counter(record, "serve.cache_hits");
    snap["queue_depth"] = record_gauge(record, "serve.queue.depth");
    snap["inflight"] = record_gauge(record, "serve.inflight");
    snap["busy_workers"] = record_gauge(record, "serve.workers.busy");
    snap["epoch"] = record_gauge(record, "serve.registry.epoch");
    snap["live_epochs"] = record_gauge(record, "serve.registry.live_epochs");
    snap["cache_entries"] = record_gauge(record, "serve.cache.entries");
    snap["cache_resident_bytes"] =
        record_gauge(record, "serve.cache.resident_bytes");
    snap["window_count"] =
        window_field(record, "serve.latency.total_seconds", "count");
    snap["window_p50"] =
        window_field(record, "serve.latency.total_seconds", "p50");
    snap["window_p99"] =
        window_field(record, "serve.latency.total_seconds", "p99");
    snap["cumulative_count"] =
        window_field(record, "serve.latency.total_seconds", "cumulative_count");
    snap["cumulative_p50"] =
        window_field(record, "serve.latency.total_seconds", "cumulative_p50");
    snap["cumulative_p99"] =
        window_field(record, "serve.latency.total_seconds", "cumulative_p99");
    snap["residual"] = residual;
    snapshots.push_back(std::move(snap));
  }

  const bool reconciled =
      !records.empty() && max_abs_residual <= tolerance &&
      final_residual == 0 &&
      record_gauge(records.back(), "serve.queue.depth") == 0 &&
      record_gauge(records.back(), "serve.inflight") == 0;
  const bool flip_visible = first_flipped > 0 &&
                            first_flipped < records.size() &&
                            registry->current_epoch() == 1;
  const bool enough = snapshot_count >= 20 && records.size() == snapshot_count;
  const bool balanced =
      stats.submitted == static_cast<std::uint64_t>(requests) &&
      stats.submitted == stats.accepted + stats.invalid + stats.rejected +
                             stats.stopped + stats.cache_hits &&
      stats.accepted ==
          stats.served + stats.encode_failed + stats.shed + stats.discarded &&
      stats.served + stats.cache_hits == client_served;

  // Overhead duel: interleaved with/without-snapshotter rounds, verdict on
  // the median per-round wall ratio — the same noise-robust scheme as the
  // amortization and warm-cache duels. The floor is the bench's documented
  // noise allowance, not a measured constant.
  const int duel_rounds = options.quick ? 3 : 5;
  const int duel_requests = options.quick ? 600 : 1500;
  const double overhead_floor = 1.15;
  std::vector<double> overhead_ratios;
  for (int r = 0; r < duel_rounds; ++r) {
    const double with_s =
        run_overhead_pass(dict, omp, pool, duel_requests,
                          options.out_dir + "/telemetry_overhead.jsonl");
    const double without_s =
        run_overhead_pass(dict, omp, pool, duel_requests, "");
    if (without_s > 0) overhead_ratios.push_back(with_s / without_s);
  }
  std::sort(overhead_ratios.begin(), overhead_ratios.end());
  const double overhead_ratio =
      overhead_ratios.empty() ? 0.0
                              : overhead_ratios[overhead_ratios.size() / 2];
  const bool overhead_ok =
      overhead_ratio > 0.0 && overhead_ratio <= overhead_floor;

  const bool ok = lost == 0 && errors == 0 && snapshotter_ok && seq_monotone &&
                  enough && reconciled && flip_visible && balanced &&
                  overhead_ok;
  violated = violated || !ok;

  Json j = Json::object();
  Json config = Json::object();
  config["requests"] = static_cast<std::uint64_t>(requests);
  config["offered_rps"] = offered_rps;
  config["period_ms"] = static_cast<std::uint64_t>(period_ms);
  config["workers"] = static_cast<std::uint64_t>(2);
  config["max_batch"] = static_cast<std::uint64_t>(8);
  config["queue_capacity"] = static_cast<std::uint64_t>(256);
  config["cache_capacity"] = static_cast<std::uint64_t>(cache_capacity);
  config["flip_at_request"] = static_cast<std::uint64_t>(flip_at);
  config["atoms_per_flip"] = static_cast<std::uint64_t>(atoms_per_flip);
  config["tolerance"] = tolerance;
  config["snapshots_file"] = jsonl_name;
  j["config"] = std::move(config);
  j["wall_seconds"] = wall_seconds;
  j["served"] = stats.served;
  j["cache_hits"] = stats.cache_hits;
  j["lost"] = lost;
  j["errors"] = errors;
  j["snapshotter_ok"] = snapshotter_ok;
  j["snapshot_count"] = snapshot_count;
  j["seq_monotone"] = seq_monotone;
  j["snapshots"] = std::move(snapshots);
  Json reconciliation = Json::object();
  reconciliation["tolerance"] = tolerance;
  reconciliation["max_abs_residual"] = max_abs_residual;
  reconciliation["final_residual"] = final_residual;
  reconciliation["ok"] = reconciled;
  j["reconciliation"] = std::move(reconciliation);
  Json flip = Json::object();
  flip["epoch_after"] = registry->current_epoch();
  flip["flip_wall_ms"] = flip_wall_ms;
  flip["flip_seconds"] = flip_seconds;
  flip["pre_flip_snapshots"] = static_cast<std::uint64_t>(first_flipped);
  flip["post_flip_snapshots"] = static_cast<std::uint64_t>(
      records.size() - std::min(first_flipped, records.size()));
  flip["ok"] = flip_visible;
  j["epoch_flip"] = std::move(flip);
  Json overhead = Json::object();
  overhead["rounds"] = static_cast<std::uint64_t>(duel_rounds);
  overhead["requests_per_round"] = static_cast<std::uint64_t>(duel_requests);
  overhead["median_ratio"] = overhead_ratio;
  overhead["floor"] = overhead_floor;
  overhead["ok"] = overhead_ok;
  j["overhead"] = std::move(overhead);
  Json cache_json = Json::object();
  cache_json["hits"] = cache.hits;
  cache_json["misses"] = cache.misses;
  cache_json["entries_at_drain"] = cache.entries;
  cache_json["resident_bytes_at_drain"] = cache.resident_bytes;
  j["cache"] = std::move(cache_json);
  j["accounting_balanced"] = balanced;
  j["contract_held"] = ok;

  std::printf(
      "  telemetry pass: %llu snapshots @ %lld ms, max residual %lld "
      "(tol %lld), flip @ snapshot %llu, overhead %.2fx%s\n",
      static_cast<unsigned long long>(snapshot_count),
      static_cast<long long>(period_ms),
      static_cast<long long>(max_abs_residual),
      static_cast<long long>(tolerance),
      static_cast<unsigned long long>(first_flipped), overhead_ratio,
      ok ? "" : "  [VIOLATION]");
  return j;
}

int write_file(const std::string& path, const Json& doc) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << doc.dump(2) << '\n';
  std::printf("[out] %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      options.out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      options.trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: run_server_bench [--quick] [--out DIR] "
                   "[--trace FILE]\n");
      return 2;
    }
  }

  std::printf("run_server_bench (%s mode)\n", options.quick ? "quick" : "full");

  // Workload: a fixed-seed dictionary and signal pool, encoded under a hard
  // sparsity cap so every request costs the same deterministic atom count —
  // the clean setting for comparing scheduler configurations.
  const Index m = 48, l = 96;
  const sparsecoding::OmpConfig omp{.tolerance = 0.0, .max_atoms = 8};
  la::Rng rng(17);
  const la::Matrix dict = rng.gaussian_matrix(m, l, true);
  const auto pool = make_signal_pool(m, 256, 18);

  util::TraceRecorder& trace = util::TraceRecorder::global();
  // The traced flagship pass now records four per-request lifecycle instants
  // on top of the batch spans; the default 16K ring would overflow at the
  // full-mode request count. Raised before any thread records its first
  // event, so every lazily-created ring gets the larger capacity.
  trace.set_capacity(std::size_t{1} << 17);

  Json doc = Json::object();
  doc["schema_version"] = 1;
  doc["benchmark"] = "bench/run_server_bench micro-batch serving sweep";
  doc["mode"] = options.quick ? "quick" : "full";
  doc["units"] =
      "throughput_rps: served requests per wall second; latency seconds are "
      "queue wait + shared batch encode window, per request";
  Json workload = Json::object();
  workload["signal_dim"] = static_cast<std::uint64_t>(m);
  workload["atoms"] = static_cast<std::uint64_t>(l);
  workload["tolerance"] = omp.tolerance;
  workload["max_atoms"] = static_cast<std::uint64_t>(omp.max_atoms);
  workload["signal_pool"] = static_cast<std::uint64_t>(pool.size());
  workload["seeds"] = "dict=17 signals=18 arrivals=0x5eed+requests";
  doc["workload"] = std::move(workload);

  Json cases = Json::array();
  bool books_balance = true;
  std::uint64_t total_submitted = 0, total_served = 0, total_lost = 0;
  double batch1_rps = 0, batch32_rps = 0;

  std::vector<CaseSpec> sweep = build_sweep(options.quick);

  // The amortization pair duels with interleaved passes: alternating
  // batch1/batch32 rounds land transient machine load on both configs
  // instead of skewing whichever happened to own the noisy window. Each
  // round yields a paired throughput ratio (its two passes are adjacent in
  // time, so they share the machine state); the verdict is the MEDIAN of
  // those per-round ratios — robust even when absolute throughput swings
  // 2x between rounds on a busy single-core box.
  std::map<std::string, std::vector<std::unique_ptr<CaseResult>>> prerun;
  double duel_speedup = 0.0;
  {
    const CaseSpec* duel[2] = {nullptr, nullptr};
    for (const CaseSpec& s : sweep) {
      if (s.name == "closed_batch1_w1") duel[0] = &s;
      if (s.name == "closed_batch32_w1") duel[1] = &s;
    }
    if (duel[0] != nullptr && duel[1] != nullptr) {
      const auto pass_rps = [](const CaseResult& c) {
        return c.wall_seconds > 0
                   ? static_cast<double>(c.served) / c.wall_seconds
                   : 0.0;
      };
      const int rounds =
          std::max({1, duel[0]->repeats, duel[1]->repeats});
      std::vector<double> round_ratio;
      for (int r = 0; r < rounds; ++r) {
        double rps[2] = {0.0, 0.0};
        for (int side = 0; side < 2; ++side) {
          const CaseSpec* s = duel[side];
          prerun[s->name].push_back(std::make_unique<CaseResult>());
          run_case(*s, dict, pool, omp, *prerun[s->name].back());
          rps[side] = pass_rps(*prerun[s->name].back());
        }
        if (rps[0] > 0) round_ratio.push_back(rps[1] / rps[0]);
      }
      std::sort(round_ratio.begin(), round_ratio.end());
      if (!round_ratio.empty()) {
        duel_speedup = round_ratio[round_ratio.size() / 2];
      }
    }
  }

  for (const CaseSpec& spec : sweep) {
    // Every pass must balance its books — a dropped future in any pass is a
    // mismatch in that pass. Reported numbers come from the fastest pass.
    std::vector<std::unique_ptr<CaseResult>> passes;
    if (auto it = prerun.find(spec.name); it != prerun.end()) {
      passes = std::move(it->second);
    } else {
      for (int rep = 0; rep < std::max(1, spec.repeats); ++rep) {
        passes.push_back(std::make_unique<CaseResult>());
        run_case(spec, dict, pool, omp, *passes.back());
      }
    }
    const auto rps_of = [](const CaseResult& c) {
      return c.wall_seconds > 0 ? static_cast<double>(c.served) / c.wall_seconds
                                : 0.0;
    };
    std::size_t best = 0;
    bool all_passes_balanced = true;
    std::vector<double> pass_rps;
    for (std::size_t r = 0; r < passes.size(); ++r) {
      all_passes_balanced =
          all_passes_balanced && accounting_balances(spec, *passes[r]);
      pass_rps.push_back(rps_of(*passes[r]));
      if (pass_rps[r] > pass_rps[best]) best = r;
    }
    std::sort(pass_rps.begin(), pass_rps.end());
    const double median_rps = pass_rps[pass_rps.size() / 2];
    // Cases report the best pass; the amortization verdict uses the median.
    const CaseResult& result = *passes[best];

    // The flagship case records its serve.batch.* timeline in a dedicated
    // extra pass so trace overhead never contaminates the measured numbers.
    if (spec.traced && !options.trace_path.empty()) {
      trace.set_enabled(true);
      CaseResult traced_pass;
      run_case(spec, dict, pool, omp, traced_pass);
      trace.set_enabled(false);
      books_balance = books_balance && accounting_balances(spec, traced_pass);
    }

    const bool balanced = all_passes_balanced;
    books_balance = books_balance && balanced;
    total_submitted += result.stats.submitted;
    total_served += result.stats.served;
    total_lost += result.lost;
    const double rps = result.wall_seconds > 0
                           ? static_cast<double>(result.served) /
                                 result.wall_seconds
                           : 0.0;
    if (spec.name == "closed_batch1_w1") batch1_rps = median_rps;
    if (spec.name == "closed_batch32_w1") batch32_rps = median_rps;

    std::printf(
        "  %-18s %6s/%-11s served %5llu/%-5d rps %9.0f p99 %8.1f us%s\n",
        spec.name.c_str(), spec.offered_rps > 0 ? "open" : "closed",
        policy_name(spec.policy),
        static_cast<unsigned long long>(result.served), spec.requests, rps,
        result.total_latency.quantile(0.99) * 1e6,
        balanced ? "" : "  [ACCOUNTING MISMATCH]");
    cases.push_back(case_json(spec, result));
  }
  doc["cases"] = std::move(cases);

  // Verdict from the paired duel when it ran; fall back to the case medians
  // if a custom sweep dropped one side of the pair.
  const double batch_speedup =
      duel_speedup > 0
          ? duel_speedup
          : (batch1_rps > 0 ? batch32_rps / batch1_rps : 0.0);
  const bool batch_win = batch_speedup > 1.0;
  Json summary = Json::object();
  summary["cases"] = static_cast<std::uint64_t>(doc.at("cases").as_array().size());
  summary["total_submitted"] = total_submitted;
  summary["total_served"] = total_served;
  summary["total_lost"] = total_lost;
  summary["all_futures_resolved"] = total_lost == 0;
  summary["accounting_balanced"] = books_balance;
  summary["batch1_rps"] = batch1_rps;  // median across the case's passes
  summary["batch32_rps"] = batch32_rps;
  summary["batch_speedup"] = batch_speedup;
  summary["batch_amortization_win"] = batch_win;
  doc["summary"] = std::move(summary);

  int rc = write_file(options.out_dir + "/BENCH_serve.json", doc);

  // Second document: the content-addressed cache sweep and the
  // serve-while-extending pass (BENCH_cache.json, validated in CI).
  bool cache_violated = false;
  Json cache_doc = Json::object();
  cache_doc["schema_version"] = 1;
  cache_doc["benchmark"] =
      "bench/run_server_bench content-addressed encode cache + zero-downtime "
      "extension";
  cache_doc["mode"] = options.quick ? "quick" : "full";
  cache_doc["units"] =
      "latency seconds are client round trips (submit to future-ready); "
      "warm_speedup is the median per-round cold/warm wall-time ratio";
  {
    Json cache_workload = Json::object();
    cache_workload["signal_dim"] = static_cast<std::uint64_t>(m);
    cache_workload["atoms"] = static_cast<std::uint64_t>(l);
    cache_workload["tolerance"] = omp.tolerance;
    cache_workload["max_atoms"] = static_cast<std::uint64_t>(omp.max_atoms);
    cache_workload["signal_pool"] = static_cast<std::uint64_t>(pool.size());
    cache_workload["seeds"] = "dict=17 signals=18 extension_atoms=19";
    cache_doc["workload"] = std::move(cache_workload);
  }
  cache_doc["cache_sweep"] =
      run_cache_sweep(dict, omp, pool, options.quick, cache_violated);
  cache_doc["extend_pass"] =
      run_extend_pass(dict, omp, pool, options.quick, cache_violated);
  {
    Json cache_summary = Json::object();
    cache_summary["warm_beats_cold"] =
        cache_doc.at("cache_sweep").at("warm_beats_cold").as_bool();
    cache_summary["hit_accounting_exact"] =
        cache_doc.at("cache_sweep").at("hit_accounting_exact").as_bool();
    cache_summary["extension_contract_held"] =
        cache_doc.at("extend_pass").at("contract_held").as_bool();
    cache_summary["violations"] = cache_violated;
    cache_doc["summary"] = std::move(cache_summary);
  }
  {
    const int cache_rc =
        write_file(options.out_dir + "/BENCH_cache.json", cache_doc);
    if (cache_rc != 0) rc = cache_rc;
  }

  // Third document: the live-telemetry pass (BENCH_telemetry.json, validated
  // by tools/validate_bench_json.py and tools/analyze_telemetry.py in CI).
  bool telemetry_violated = false;
  Json telemetry_doc = Json::object();
  telemetry_doc["schema_version"] = 1;
  telemetry_doc["benchmark"] =
      "bench/run_server_bench live serving telemetry (gauges, windowed "
      "quantiles, periodic snapshot exporter)";
  telemetry_doc["mode"] = options.quick ? "quick" : "full";
  telemetry_doc["units"] =
      "wall_ms is milliseconds since snapshotter start; residual is "
      "(queue_depth + inflight) - (accepted - served - encode_failures - "
      "shed - discarded), in requests";
  {
    Json telemetry_workload = Json::object();
    telemetry_workload["signal_dim"] = static_cast<std::uint64_t>(m);
    telemetry_workload["atoms"] = static_cast<std::uint64_t>(l);
    telemetry_workload["tolerance"] = omp.tolerance;
    telemetry_workload["max_atoms"] = static_cast<std::uint64_t>(omp.max_atoms);
    telemetry_workload["signal_pool"] = static_cast<std::uint64_t>(pool.size());
    telemetry_workload["seeds"] =
        "dict=17 signals=18 arrivals=0x5eed+requests extension_atoms=19";
    telemetry_doc["workload"] = std::move(telemetry_workload);
  }
  telemetry_doc["telemetry_pass"] =
      run_telemetry_pass(dict, omp, pool, options, telemetry_violated);
  {
    Json telemetry_summary = Json::object();
    const Json& pass = telemetry_doc.at("telemetry_pass");
    telemetry_summary["snapshot_count"] = pass.at("snapshot_count").as_u64();
    telemetry_summary["reconciliation_ok"] =
        pass.at("reconciliation").at("ok").as_bool();
    telemetry_summary["epoch_flip_ok"] = pass.at("epoch_flip").at("ok").as_bool();
    telemetry_summary["overhead_ok"] = pass.at("overhead").at("ok").as_bool();
    telemetry_summary["violations"] = telemetry_violated;
    telemetry_doc["summary"] = std::move(telemetry_summary);
  }
  {
    const int telemetry_rc =
        write_file(options.out_dir + "/BENCH_telemetry.json", telemetry_doc);
    if (telemetry_rc != 0) rc = telemetry_rc;
  }

  if (!options.trace_path.empty()) {
    trace.set_metadata("mode", options.quick ? "quick" : "full");
    const int trace_rc = write_file(options.trace_path, trace.to_chrome_json());
    const std::uint64_t dropped = trace.dropped_events();
    std::printf("trace: %llu events recorded, %llu dropped\n",
                static_cast<unsigned long long>(trace.recorded_events()),
                static_cast<unsigned long long>(dropped));
    if (trace_rc != 0) rc = trace_rc;
    if (dropped != 0) {
      std::fprintf(stderr,
                   "error: trace dropped %llu events — raise the ring "
                   "capacity before trusting the timeline\n",
                   static_cast<unsigned long long>(dropped));
      rc = 1;
    }
  }

  if (total_lost != 0 || !books_balance) {
    std::fprintf(stderr,
                 "error: serving contract violated (lost=%llu balanced=%d)\n",
                 static_cast<unsigned long long>(total_lost),
                 books_balance ? 1 : 0);
    return 1;
  }
  if (!batch_win) {
    std::fprintf(stderr,
                 "error: micro-batching failed to beat batch-size-1 "
                 "(batch1 %.0f rps vs batch32 %.0f rps, paired speedup "
                 "%.2fx)\n",
                 batch1_rps, batch32_rps, batch_speedup);
    return 1;
  }
  if (cache_violated) {
    std::fprintf(stderr,
                 "error: cache/extension contract violated (see "
                 "BENCH_cache.json summary)\n");
    return 1;
  }
  if (telemetry_violated) {
    std::fprintf(stderr,
                 "error: telemetry contract violated (see "
                 "BENCH_telemetry.json summary)\n");
    return 1;
  }
  std::printf("micro-batch amortization: %.0f -> %.0f rps (%.2fx)\n",
              batch1_rps, batch32_rps, batch_speedup);
  return rc;
}
