// Ablation: the evolving-data update (§V-E, zero-padding) vs re-running ExD
// on the full enlarged dataset. The incremental path must be much cheaper
// while keeping the transformation error within tolerance.

#include "bench_common.hpp"
#include "core/evolving.hpp"
#include "core/exd.hpp"
#include "data/subspace.hpp"

int main() {
  using namespace extdict;
  bench::banner("Ablation", "Evolving-data update vs full re-transform");

  data::SubspaceModelConfig base_config;
  base_config.ambient_dim = 200;
  base_config.num_columns = 2500;
  base_config.num_subspaces = 12;
  base_config.subspace_dim = 6;
  base_config.seed = 44;
  const auto base = data::make_union_of_subspaces(base_config);

  core::ExdConfig exd_config;
  exd_config.dictionary_size = 300;
  exd_config.tolerance = 0.1;
  exd_config.seed = 16;

  util::Timer t0;
  core::ExdResult incremental = core::exd_transform(base.a, exd_config);
  const double initial_ms = t0.elapsed_ms();
  std::printf("initial transform: %td x %td, %.1f ms, error %.4f\n",
              base.a.rows(), base.a.cols(), initial_ms,
              incremental.transformation_error);

  util::Table table({"batch", "kind", "incremental (ms)", "full re-run (ms)",
                     "speedup", "err (incremental)", "err (full)",
                     "atoms added"});

  la::Matrix full_data = base.a;
  for (int batch = 1; batch <= 3; ++batch) {
    // Alternate familiar and novel batches.
    data::SubspaceModelConfig batch_config = base_config;
    batch_config.num_columns = 250;
    batch_config.seed = base_config.seed + (batch % 2 == 0 ? 0 : 1000 + batch);
    const auto batch_data = data::make_union_of_subspaces(batch_config);
    full_data.append_columns(batch_data.a);

    core::ExdConfig evolve_config = exd_config;
    evolve_config.dictionary_size = 60;  // atoms to learn if structure is new

    util::Timer t_inc;
    const auto report = core::evolve(incremental, batch_data.a, evolve_config);
    const double inc_ms = t_inc.elapsed_ms();
    const double inc_err = core::transformation_error(
        full_data, incremental.dictionary, incremental.coefficients);

    util::Timer t_full;
    core::ExdConfig rerun = exd_config;
    rerun.dictionary_size = incremental.dictionary.cols();
    const auto full = core::exd_transform(full_data, rerun);
    const double full_ms = t_full.elapsed_ms();

    table.add_row({std::to_string(batch),
                   batch % 2 == 0 ? "familiar" : "novel",
                   util::fmt(inc_ms, 4), util::fmt(full_ms, 4),
                   util::fmt(full_ms / inc_ms, 3) + "x",
                   util::fmt(inc_err, 4),
                   util::fmt(full.transformation_error, 4),
                   std::to_string(report.new_atoms)});
  }
  std::printf("%s", table.str().c_str());
  bench::note(
      "expected: incremental updates are cheaper than re-running ExD — "
      "dramatically so for familiar batches — AND more accurate on novel "
      "batches: uniform re-sampling dilutes rare new structure, while the "
      "targeted extension learns atoms from exactly the failing columns");
  return 0;
}
