// Ablation: Batch-OMP (precomputed Gram + progressive Cholesky, §V-D) vs
// the reference explicit-residual OMP. Same selections and coefficients
// (tested in batch_omp_test), so the only question is speed — this is the
// implementation choice that makes ExD "linear time" in practice.

#include "bench_common.hpp"
#include "la/blas.hpp"
#include "la/random.hpp"
#include "sparsecoding/batch_omp.hpp"
#include "sparsecoding/omp.hpp"

int main() {
  using namespace extdict;
  bench::banner("Ablation", "Batch-OMP vs reference OMP encoding throughput");

  la::Rng rng(15);
  const la::Index m = 200;
  const la::Index n_signals = 400;

  util::Table table({"L", "avg atoms/signal", "reference OMP (ms)",
                     "Batch-OMP (ms)", "speedup"});
  for (const la::Index l : {100l, 200l, 400l, 800l}) {
    // Union-of-subspace-flavoured dictionary & signals.
    const la::Matrix dict = rng.gaussian_matrix(m, l, true);
    la::Matrix signals(m, n_signals);
    la::Vector coeff(6);
    for (la::Index j = 0; j < n_signals; ++j) {
      auto col = signals.col(j);
      std::fill(col.begin(), col.end(), la::Real{0});
      for (int k = 0; k < 6; ++k) {
        la::axpy(rng.gaussian(), dict.col(rng.uniform_index(0, l - 1)), col);
      }
    }
    signals.normalize_columns();

    const sparsecoding::OmpConfig config{.tolerance = 0.05, .max_atoms = 0};

    util::Timer t_ref;
    std::uint64_t atoms_ref = 0;
    for (la::Index j = 0; j < n_signals; ++j) {
      atoms_ref += static_cast<std::uint64_t>(
          sparsecoding::omp_sparse_code(dict, signals.col(j), config).nnz());
    }
    const double ms_ref = t_ref.elapsed_ms();

    util::Timer t_batch;
    const sparsecoding::BatchOmp coder(dict, config);
    const auto c = coder.encode_all(signals);
    const double ms_batch = t_batch.elapsed_ms();

    table.add_row({std::to_string(l),
                   util::fmt(static_cast<double>(atoms_ref) / n_signals, 3),
                   util::fmt(ms_ref, 4), util::fmt(ms_batch, 4),
                   util::fmt(ms_ref / ms_batch, 3) + "x"});
    (void)c;
  }
  std::printf("%s", table.str().c_str());
  bench::note("expected: Batch-OMP several times faster at every L (the "
              "reference re-solves a dense least-squares fit per greedy "
              "iteration and recomputes correlations against the residual)");
  return 0;
}
