// Table II: preprocessing overhead — the one-time cost of tuning ExD
// (subset-based alpha profiling + cost-model argmin) and of executing the
// transformation at the tuned L.
//
// The paper reports milliseconds on 64 cores (8x8). We report the measured
// host wall-clock (OpenMP-parallel on this machine) plus a modelled 64-core
// figure obtained by dividing the embarrassingly parallel coding work
// across 64 workers (Alg. 1 step 3 is per-column independent; §V-D).
//
// Paper shape: overhead is a one-time cost amortised over iterations, and
// Cancer Cells costs MORE than the (larger) Light Field set because its
// denser geometry needs more OMP iterations per column.

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "core/exd.hpp"
#include "core/tuner.hpp"

int main() {
  using namespace extdict;
  bench::banner("Table II", "Preprocessing overhead (tuning + transformation)");

  const auto sets = bench::BenchDatasets::load();
  const auto platform = dist::PlatformSpec::idataplex({8, 8});

  util::Table table({"dataset", "tuning (ms, host)", "transform (ms, host)",
                     "overall (ms, host)", "modeled 64-core (ms)", "L*"});
  for (const auto& entry : sets.entries) {
    core::TunerConfig config;
    config.profile.l_grid = entry.spec.l_grid;
    config.profile.tolerance = 0.1;
    config.profile.seed = 2;
    const la::Index n = entry.a.cols();
    config.subset_sizes = {n / 10, n / 4, n};

    util::Timer tune_timer;
    const core::TunerResult tuned = core::tune(entry.a, platform, config);
    const double tuning_ms = tune_timer.elapsed_ms();

    core::ExdConfig exd;
    exd.dictionary_size = tuned.best_l;
    exd.tolerance = 0.1;
    exd.seed = 2;
    const core::ExdResult result = core::exd_transform(entry.a, exd);

#ifdef _OPENMP
    const double host_threads = omp_get_max_threads();
#else
    const double host_threads = 1.0;
#endif
    const double modeled64 =
        (tuning_ms + result.transform_ms) * host_threads / 64.0;

    table.add_row({entry.spec.name, util::fmt(tuning_ms, 4),
                   util::fmt(result.transform_ms, 4),
                   util::fmt(tuning_ms + result.transform_ms, 4),
                   util::fmt(modeled64, 4), std::to_string(tuned.best_l)});
  }
  std::printf("%s", table.str().c_str());
  bench::note(
      "paper shape: although Light Field is the larger dataset, Cancer "
      "Cells incurs the higher preprocessing overhead (denser geometry -> "
      "more OMP iterations per column); check the same ordering here");
  return 0;
}
